//! Trace generation, persistence and replay.
//!
//! A [`Trace`] is the fully materialized request stream one experiment run
//! consumes. Pre-materializing (rather than sampling inside each scheduler)
//! guarantees that competing schedulers are compared on *identical* arrivals
//! and service times.

use crate::arrival::ArrivalProcess;
use crate::dist::ServiceDistribution;
use crate::request::{ConnectionId, Request, RequestId, RequestKind};
use rand::Rng;
use simcore::rng::{stream_rng, streams};
use simcore::time::{SimDuration, SimTime};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// A materialized, time-ordered stream of requests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Wraps a request vector.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not non-decreasing in time.
    pub fn new(requests: Vec<Request>) -> Self {
        for pair in requests.windows(2) {
            assert!(
                pair[0].arrival <= pair[1].arrival,
                "trace arrivals must be sorted"
            );
        }
        Trace { requests }
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True iff the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over requests.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Time of the last arrival (zero for an empty trace).
    pub fn span(&self) -> SimTime {
        self.requests.last().map_or(SimTime::ZERO, |r| r.arrival)
    }

    /// Measured arrival rate over the trace span, requests/second.
    pub fn measured_rate(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.requests.len() as f64 / span
    }

    /// Mean of the pre-drawn service times.
    pub fn mean_service(&self) -> SimDuration {
        if self.requests.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self
            .requests
            .iter()
            .map(|r| r.service.as_ps() as u128)
            .sum();
        SimDuration::from_ps((total / self.requests.len() as u128) as u64)
    }

    /// Offered load on a `servers`-core system: λ·E\[S\]/k.
    pub fn offered_load(&self, servers: usize) -> f64 {
        assert!(servers > 0);
        self.measured_rate() * self.mean_service().as_secs_f64() / servers as f64
    }

    /// Serializes to a simple line-oriented text format
    /// (`id arrival_ps service_ps kind conn size`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "# altocumulus-trace v1")?;
        for r in &self.requests {
            writeln!(
                w,
                "{} {} {} {} {} {}",
                r.id.0,
                r.arrival.as_ps(),
                r.service.as_ps(),
                r.kind.label(),
                r.conn.0,
                r.size_bytes
            )?;
        }
        w.flush()
    }

    /// Parses the format written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed lines and propagates I/O errors.
    pub fn load<R: Read>(r: R) -> io::Result<Trace> {
        let reader = BufReader::new(r);
        let mut requests = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |msg: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line {}: {msg}", lineno + 1),
                )
            };
            let mut parts = line.split_ascii_whitespace();
            let mut next = |name: &str| parts.next().ok_or_else(|| bad(name));
            let id: u64 = next("missing id")?.parse().map_err(|_| bad("bad id"))?;
            let arrival: u64 = next("missing arrival")?
                .parse()
                .map_err(|_| bad("bad arrival"))?;
            let service: u64 = next("missing service")?
                .parse()
                .map_err(|_| bad("bad service"))?;
            let kind = match next("missing kind")? {
                "generic" => RequestKind::Generic,
                "get" => RequestKind::Get,
                "set" => RequestKind::Set,
                "scan" => RequestKind::Scan,
                other => return Err(bad(&format!("unknown kind {other:?}"))),
            };
            let conn: u32 = next("missing conn")?.parse().map_err(|_| bad("bad conn"))?;
            let size: u32 = next("missing size")?.parse().map_err(|_| bad("bad size"))?;
            requests.push(Request {
                id: RequestId(id),
                arrival: SimTime::from_ps(arrival),
                service: SimDuration::from_ps(service),
                kind,
                conn: ConnectionId(conn),
                size_bytes: size,
            });
        }
        requests.sort_by_key(|r| (r.arrival, r.id));
        Ok(Trace::new(requests))
    }
}

impl Trace {
    /// Merges several traces into one, interleaving by arrival time and
    /// re-assigning request ids in arrival order. Used to compose
    /// independently-bursty per-connection-cluster streams into one
    /// "real-world" trace whose bursts hit different receive queues at
    /// different times (cf. the temporal imbalance of Fig. 9).
    pub fn merge(traces: Vec<Trace>) -> Trace {
        let mut all: Vec<Request> = traces.into_iter().flat_map(|t| t.requests).collect();
        all.sort_by_key(|r| (r.arrival, r.conn));
        for (i, r) in all.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        Trace::new(all)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

/// Builder that materializes a [`Trace`] from an arrival process and a
/// service distribution.
///
/// # Examples
///
/// ```
/// use workload::arrival::PoissonProcess;
/// use workload::dist::ServiceDistribution;
/// use workload::trace::TraceBuilder;
/// use simcore::time::SimDuration;
///
/// let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
/// let rate = PoissonProcess::rate_for_load(0.8, 16, dist.mean());
/// let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
///     .requests(10_000)
///     .seed(42)
///     .build();
/// assert_eq!(trace.len(), 10_000);
/// let load = trace.offered_load(16);
/// assert!((load - 0.8).abs() < 0.05, "load={load}");
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder<A> {
    arrivals: A,
    service: ServiceDistribution,
    n_requests: usize,
    n_connections: u32,
    connection_offset: u32,
    seed: u64,
    kind_for_service: bool,
    scan_threshold: SimDuration,
}

impl<A: ArrivalProcess> TraceBuilder<A> {
    /// Starts a builder with 10 000 requests, 64 connections and seed 0.
    pub fn new(arrivals: A, service: ServiceDistribution) -> Self {
        TraceBuilder {
            arrivals,
            service,
            n_requests: 10_000,
            n_connections: 64,
            connection_offset: 0,
            seed: 0,
            kind_for_service: false,
            scan_threshold: SimDuration::from_us(10),
        }
    }

    /// Sets the number of requests to generate.
    pub fn requests(mut self, n: usize) -> Self {
        self.n_requests = n;
        self
    }

    /// Sets the number of client connections requests are spread across.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn connections(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one connection");
        self.n_connections = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Offsets the connection-id range to `[offset, offset + connections)`,
    /// so merged per-cluster traces land on disjoint connections (and thus
    /// distinct RSS queues).
    pub fn connection_offset(mut self, offset: u32) -> Self {
        self.connection_offset = offset;
        self
    }

    /// Classifies requests whose service time is ≥ the threshold as `Scan`
    /// and the rest as `Get`/`Set` (50/50), mimicking the MICA mix.
    pub fn classify_kvs(mut self, scan_threshold: SimDuration) -> Self {
        self.kind_for_service = true;
        self.scan_threshold = scan_threshold;
        self
    }

    /// Materializes the trace.
    pub fn build(mut self) -> Trace {
        let mut arr_rng = stream_rng(self.seed, streams::ARRIVALS);
        let mut svc_rng = stream_rng(self.seed, streams::SERVICE);
        let mut key_rng = stream_rng(self.seed, streams::KEYS);
        let mut now = SimTime::ZERO;
        let mut requests = Vec::with_capacity(self.n_requests);
        for i in 0..self.n_requests {
            now += self.arrivals.next_gap(&mut arr_rng);
            let service = self.service.sample(&mut svc_rng);
            let conn =
                ConnectionId(self.connection_offset + key_rng.random_range(0..self.n_connections));
            let kind = if self.kind_for_service {
                if service >= self.scan_threshold {
                    RequestKind::Scan
                } else if key_rng.random::<bool>() {
                    RequestKind::Get
                } else {
                    RequestKind::Set
                }
            } else {
                RequestKind::Generic
            };
            requests.push(Request {
                id: RequestId(i as u64),
                arrival: now,
                service,
                kind,
                conn,
                size_bytes: 300,
            });
        }
        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::PoissonProcess;

    fn small_trace() -> Trace {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(1000)
            .seed(9)
            .build()
    }

    #[test]
    fn builder_generates_sorted_arrivals() {
        let t = small_trace();
        assert_eq!(t.len(), 1000);
        for pair in t.requests().windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn builder_is_deterministic() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let a = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(100)
            .seed(1)
            .build();
        let b = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(100)
            .seed(2)
            .build();
        assert_ne!(a, b);
    }

    #[test]
    fn offered_load_close_to_target() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let rate = PoissonProcess::rate_for_load(0.9, 64, dist.mean());
        let t = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(100_000)
            .seed(3)
            .build();
        let load = t.offered_load(64);
        assert!((load - 0.9).abs() < 0.02, "load={load}");
    }

    #[test]
    fn kvs_classification() {
        let dist = ServiceDistribution::mica_mix_paper();
        let t = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(50_000)
            .seed(4)
            .classify_kvs(SimDuration::from_us(10))
            .build();
        let scans = t.iter().filter(|r| r.kind == RequestKind::Scan).count();
        let gets = t.iter().filter(|r| r.kind == RequestKind::Get).count();
        let sets = t.iter().filter(|r| r.kind == RequestKind::Set).count();
        assert_eq!(scans + gets + sets, t.len());
        let p_scan = scans as f64 / t.len() as f64;
        assert!((p_scan - 0.005).abs() < 0.002, "p_scan={p_scan}");
        // GET/SET roughly balanced.
        let ratio = gets as f64 / sets as f64;
        assert!((0.9..1.1).contains(&ratio), "get/set ratio={ratio}");
    }

    #[test]
    fn connections_bounded() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(5000)
            .connections(4)
            .seed(5)
            .build();
        assert!(t.iter().all(|r| r.conn.0 < 4));
        let distinct: std::collections::HashSet<u32> = t.iter().map(|r| r.conn.0).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn save_load_round_trip() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let loaded = Trace::load(&buf[..]).unwrap();
        assert_eq!(t, loaded);
    }

    #[test]
    fn load_rejects_garbage() {
        let err = Trace::load(&b"1 2 three generic 0 300"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = Trace::load(&b"1 2 3 frobnicate 0 300"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let text = "# header\n\n0 100 200 get 1 64\n";
        let t = Trace::load(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.requests()[0].kind, RequestKind::Get);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn new_rejects_unsorted() {
        let r1 = Request::synthetic(0, SimTime::from_ns(10), SimDuration::from_ns(1), 0);
        let r2 = Request::synthetic(1, SimTime::from_ns(5), SimDuration::from_ns(1), 0);
        Trace::new(vec![r1, r2]);
    }

    #[test]
    fn merge_interleaves_and_reids() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let a = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(100)
            .connections(2)
            .seed(1)
            .build();
        let b = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(100)
            .connections(2)
            .connection_offset(10)
            .seed(2)
            .build();
        let merged = Trace::merge(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 200);
        for (i, r) in merged.iter().enumerate() {
            assert_eq!(r.id.0, i as u64, "ids re-assigned in arrival order");
        }
        for w in merged.requests().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Both connection ranges present.
        assert!(merged.iter().any(|r| r.conn.0 < 2));
        assert!(merged.iter().any(|r| r.conn.0 >= 10));
    }

    #[test]
    fn merge_of_empty_is_empty() {
        let merged = Trace::merge(vec![Trace::default(), Trace::default()]);
        assert!(merged.is_empty());
    }

    #[test]
    fn connection_offset_applies() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = TraceBuilder::new(PoissonProcess::new(1e6), dist)
            .requests(50)
            .connections(4)
            .connection_offset(100)
            .seed(3)
            .build();
        assert!(t.iter().all(|r| (100..104).contains(&r.conn.0)));
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.measured_rate(), 0.0);
        assert_eq!(t.mean_service(), SimDuration::ZERO);
        assert_eq!(t.span(), SimTime::ZERO);
    }
}
