//! Service-time distributions.
//!
//! The paper evaluates three "widely-used service time distributions" —
//! Fixed, Uniform and Bi-modal (§IV-A, Fig. 7) — plus exponential and
//! log-normal for sensitivity. Sampling is implemented here directly
//! (inverse-CDF for exponential, Box–Muller for normal) so the only runtime
//! dependency is `rand` itself.

use rand::Rng;
use simcore::time::SimDuration;
use std::fmt;

/// A distribution of per-request service times.
///
/// # Examples
///
/// ```
/// use workload::dist::ServiceDistribution;
/// use simcore::time::SimDuration;
/// use rand::SeedableRng;
///
/// let dist = ServiceDistribution::bimodal_paper(); // 99.5% 0.5us, 0.5% 500us
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = dist.sample(&mut rng);
/// assert!(s >= SimDuration::from_ns(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceDistribution {
    /// Every request takes exactly this long.
    Fixed(SimDuration),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: SimDuration,
        /// Upper bound (inclusive).
        hi: SimDuration,
    },
    /// Two-point mixture: with probability `p_long` the request takes
    /// `long`, otherwise `short`. Models short GET/SET vs. long SCAN.
    Bimodal {
        /// Service time of the common, short class.
        short: SimDuration,
        /// Service time of the rare, long class.
        long: SimDuration,
        /// Probability of drawing the long class (in `[0,1]`).
        p_long: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean service time.
        mean: SimDuration,
    },
    /// Log-normal parameterized by its median and the σ of the underlying
    /// normal (a σ of ~1 gives the heavy dispersion seen in storage traces).
    Lognormal {
        /// Median service time (e^µ of the underlying normal).
        median: SimDuration,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl ServiceDistribution {
    /// The paper's headline Bimodal workload (§VIII-A): 99.5% of requests
    /// take 0.5 µs and 0.5% take 500 µs.
    pub fn bimodal_paper() -> Self {
        ServiceDistribution::Bimodal {
            short: SimDuration::from_ns(500),
            long: SimDuration::from_us(500),
            p_long: 0.005,
        }
    }

    /// The MICA + nanoRPC mix of §IX-D: 99.5% ~50 ns GET/SET, 0.5% ~50 µs
    /// SCAN.
    pub fn mica_mix_paper() -> Self {
        ServiceDistribution::Bimodal {
            short: SimDuration::from_ns(50),
            long: SimDuration::from_us(50),
            p_long: 0.005,
        }
    }

    /// A fixed 850 ns service time: one eRPC-stack request (§IX-C).
    pub fn erpc_fixed() -> Self {
        ServiceDistribution::Fixed(SimDuration::from_ns(850))
    }

    /// Draws one service time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            ServiceDistribution::Fixed(d) => d,
            ServiceDistribution::Uniform { lo, hi } => {
                debug_assert!(lo <= hi);
                let span = hi.as_ps() - lo.as_ps();
                SimDuration::from_ps(lo.as_ps() + (rng.random::<f64>() * span as f64) as u64)
            }
            ServiceDistribution::Bimodal {
                short,
                long,
                p_long,
            } => {
                if rng.random::<f64>() < p_long {
                    long
                } else {
                    short
                }
            }
            ServiceDistribution::Exponential { mean } => {
                SimDuration::from_ns_f64(sample_exponential(rng) * mean.as_ns_f64())
            }
            ServiceDistribution::Lognormal { median, sigma } => {
                let z = sample_standard_normal(rng);
                SimDuration::from_ns_f64(median.as_ns_f64() * (sigma * z).exp())
            }
        }
    }

    /// The exact mean of the distribution.
    pub fn mean(&self) -> SimDuration {
        match *self {
            ServiceDistribution::Fixed(d) => d,
            ServiceDistribution::Uniform { lo, hi } => {
                SimDuration::from_ps((lo.as_ps() + hi.as_ps()) / 2)
            }
            ServiceDistribution::Bimodal {
                short,
                long,
                p_long,
            } => SimDuration::from_ns_f64(
                short.as_ns_f64() * (1.0 - p_long) + long.as_ns_f64() * p_long,
            ),
            ServiceDistribution::Exponential { mean } => mean,
            ServiceDistribution::Lognormal { median, sigma } => {
                SimDuration::from_ns_f64(median.as_ns_f64() * (sigma * sigma / 2.0).exp())
            }
        }
    }

    /// Squared coefficient of variation (variance / mean²); 0 for Fixed,
    /// 1 for Exponential, large for dispersed bimodals. Drives queueing
    /// approximations.
    pub fn scv(&self) -> f64 {
        match *self {
            ServiceDistribution::Fixed(_) => 0.0,
            ServiceDistribution::Uniform { lo, hi } => {
                let a = lo.as_ns_f64();
                let b = hi.as_ns_f64();
                let mean = (a + b) / 2.0;
                if mean == 0.0 {
                    return 0.0;
                }
                ((b - a).powi(2) / 12.0) / (mean * mean)
            }
            ServiceDistribution::Bimodal {
                short,
                long,
                p_long,
            } => {
                let s = short.as_ns_f64();
                let l = long.as_ns_f64();
                let m = s * (1.0 - p_long) + l * p_long;
                if m == 0.0 {
                    return 0.0;
                }
                let ex2 = s * s * (1.0 - p_long) + l * l * p_long;
                (ex2 - m * m) / (m * m)
            }
            ServiceDistribution::Exponential { .. } => 1.0,
            ServiceDistribution::Lognormal { sigma, .. } => (sigma * sigma).exp() - 1.0,
        }
    }

    /// Short human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceDistribution::Fixed(_) => "Fixed",
            ServiceDistribution::Uniform { .. } => "Uniform",
            ServiceDistribution::Bimodal { .. } => "Bimodal",
            ServiceDistribution::Exponential { .. } => "Exponential",
            ServiceDistribution::Lognormal { .. } => "Lognormal",
        }
    }
}

impl fmt::Display for ServiceDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServiceDistribution::Fixed(d) => write!(f, "Fixed({d})"),
            ServiceDistribution::Uniform { lo, hi } => write!(f, "Uniform[{lo},{hi}]"),
            ServiceDistribution::Bimodal {
                short,
                long,
                p_long,
            } => write!(f, "Bimodal({short}/{long}, p_long={p_long})"),
            ServiceDistribution::Exponential { mean } => write!(f, "Exp(mean={mean})"),
            ServiceDistribution::Lognormal { median, sigma } => {
                write!(f, "Lognormal(median={median}, sigma={sigma})")
            }
        }
    }
}

/// Draws Exp(1) via inverse CDF. Guards against `ln(0)`.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln()
}

/// Draws a standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(dist: &ServiceDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let total: f64 = (0..n).map(|_| dist.sample(&mut rng).as_ns_f64()).sum();
        total / n as f64
    }

    #[test]
    fn fixed_is_constant() {
        let d = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_ns(850));
        }
        assert_eq!(d.mean(), SimDuration::from_ns(850));
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = ServiceDistribution::Uniform {
            lo: SimDuration::from_ns(100),
            hi: SimDuration::from_ns(300),
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_ns(100) && s <= SimDuration::from_ns(300));
        }
        let m = sample_mean(&d, 100_000, 2);
        assert!((m - 200.0).abs() < 2.0, "mean={m}");
        assert_eq!(d.mean(), SimDuration::from_ns(200));
    }

    #[test]
    fn bimodal_proportions() {
        let d = ServiceDistribution::bimodal_paper();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let longs = (0..n)
            .filter(|_| d.sample(&mut rng) == SimDuration::from_us(500))
            .count();
        let p = longs as f64 / n as f64;
        assert!((p - 0.005).abs() < 0.001, "p_long={p}");
    }

    #[test]
    fn bimodal_mean_formula() {
        let d = ServiceDistribution::bimodal_paper();
        // 0.995*0.5us + 0.005*500us = 0.4975 + 2.5 = 2.9975 us
        let m = d.mean().as_us_f64();
        assert!((m - 2.9975).abs() < 1e-9, "mean={m}");
    }

    #[test]
    fn exponential_mean_and_scv() {
        let d = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(1000),
        };
        let m = sample_mean(&d, 200_000, 4);
        assert!((m - 1000.0).abs() / 1000.0 < 0.02, "mean={m}");
        assert_eq!(d.scv(), 1.0);
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let d = ServiceDistribution::Lognormal {
            median: SimDuration::from_ns(1000),
            sigma: 0.5,
        };
        let expected = 1000.0 * (0.125f64).exp();
        let m = sample_mean(&d, 400_000, 5);
        assert!(
            (m - expected).abs() / expected < 0.02,
            "mean={m} expected={expected}"
        );
        // mean() rounds to picoseconds, so allow ps-scale error.
        assert!((d.mean().as_ns_f64() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn scv_ordering() {
        let fixed = ServiceDistribution::Fixed(SimDuration::from_ns(100));
        let exp = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(100),
        };
        let bimodal = ServiceDistribution::bimodal_paper();
        assert!(fixed.scv() < exp.scv());
        assert!(exp.scv() < bimodal.scv());
        // The paper's bimodal is extremely dispersed.
        assert!(bimodal.scv() > 50.0);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(ServiceDistribution::bimodal_paper().name(), "Bimodal");
        let s = ServiceDistribution::erpc_fixed().to_string();
        assert!(s.contains("850"));
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = sample_standard_normal(&mut rng);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }
}
