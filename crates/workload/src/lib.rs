//! # workload — traffic generation for nanosecond-scale RPC experiments
//!
//! Builds the request streams every experiment in the Altocumulus
//! reproduction consumes:
//!
//! - [`dist`]: service-time distributions (Fixed / Uniform / Bimodal /
//!   Exponential / Lognormal) with exact means and SCVs.
//! - [`arrival`]: Poisson, paced and Markov-modulated (bursty "real-world")
//!   arrival processes.
//! - [`request`]: the [`request::Request`] / [`request::Completion`] records
//!   shared by all simulated systems.
//! - [`trace`]: materialized, persistable [`trace::Trace`]s so that every
//!   scheduler is compared on identical workloads.
//!
//! # Examples
//!
//! Generate the paper's headline Bimodal workload at load 0.8 on 16 cores:
//!
//! ```
//! use workload::arrival::PoissonProcess;
//! use workload::dist::ServiceDistribution;
//! use workload::trace::TraceBuilder;
//!
//! let dist = ServiceDistribution::bimodal_paper();
//! let rate = PoissonProcess::rate_for_load(0.8, 16, dist.mean());
//! let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
//!     .requests(1_000)
//!     .seed(7)
//!     .build();
//! assert_eq!(trace.len(), 1_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod dist;
pub mod realworld;
pub mod request;
pub mod trace;

pub use arrival::{ArrivalProcess, DeterministicProcess, MmppProcess, PoissonProcess};
pub use dist::ServiceDistribution;
pub use realworld::clustered_bursty;
pub use request::{Completion, ConnectionId, Request, RequestId, RequestKind};
pub use trace::{Trace, TraceBuilder};
