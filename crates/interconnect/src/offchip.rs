//! Off-chip transfer cost models: PCIe, QPI and the memory hierarchy.
//!
//! Constants follow the paper's methodology (§VII-B): PCIe 200–800 ns
//! depending on data size [Neugebauer et al., SIGCOMM'18], QPI 150 ns
//! point-to-point [Achermann et al., ASPLOS'20], a minimum of 70 cycles to
//! move a message between cores through the cache-coherence protocol
//! [Shinjuku, NSDI'19], and 200–400 ns for a work-stealing operation's 2–3
//! cache misses [Arachne, OSDI'18].

use simcore::time::SimDuration;

/// PCIe transfer latency model: a fixed round-trip base plus a size-dependent
/// term, clamped to the paper's published 200–800 ns range.
///
/// # Examples
///
/// ```
/// use interconnect::offchip::Pcie;
///
/// let pcie = Pcie::default();
/// assert_eq!(pcie.transfer(64).as_ns_f64(), 200.0 + 64.0 * 0.15);
/// assert_eq!(pcie.transfer(1_000_000).as_ns_f64(), 800.0); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pcie {
    /// Minimum transfer latency (small messages).
    pub base: SimDuration,
    /// Maximum transfer latency (the paper's 800 ns upper bound).
    pub max: SimDuration,
    /// Additional nanoseconds per byte.
    pub ns_per_byte: f64,
}

impl Default for Pcie {
    fn default() -> Self {
        Pcie {
            base: SimDuration::from_ns(200),
            max: SimDuration::from_ns(800),
            // 4 KB transfer hits the 800ns cap: (800-200)/4096 ~ 0.146.
            ns_per_byte: 0.15,
        }
    }
}

impl Pcie {
    /// Latency to move `bytes` across PCIe (one direction).
    pub fn transfer(&self, bytes: u32) -> SimDuration {
        let ns = self.base.as_ns_f64() + bytes as f64 * self.ns_per_byte;
        SimDuration::from_ns_f64(ns.min(self.max.as_ns_f64()))
    }
}

/// QPI / UPI cross-socket interconnect: a constant point-to-point latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qpi {
    /// One-way latency (paper: 150 ns, range 150–250 ns).
    pub point_to_point: SimDuration,
}

impl Default for Qpi {
    fn default() -> Self {
        Qpi {
            point_to_point: SimDuration::from_ns(150),
        }
    }
}

impl Qpi {
    /// Latency of one cross-socket message.
    pub fn transfer(&self) -> SimDuration {
        self.point_to_point
    }
}

/// Memory-hierarchy access latencies at a given core frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Core clock in GHz (the paper models 2 GHz cores).
    pub ghz: f64,
    /// L1 hit.
    pub l1: SimDuration,
    /// Local LLC slice hit.
    pub llc: SimDuration,
    /// Remote LLC slice / cross-core cache-line transfer — the paper's
    /// "minimum of 70 cycles to move a message ... through the cache
    /// coherence protocol".
    pub remote_cache: SimDuration,
    /// DRAM access.
    pub dram: SimDuration,
}

impl Default for MemoryModel {
    fn default() -> Self {
        let ghz = 2.0;
        MemoryModel {
            ghz,
            l1: SimDuration::from_cycles(4, ghz),
            llc: SimDuration::from_cycles(30, ghz),
            remote_cache: SimDuration::from_cycles(70, ghz),
            dram: SimDuration::from_ns(90),
        }
    }
}

impl MemoryModel {
    /// Latency of `cycles` of pure compute at this clock.
    pub fn cycles(&self, cycles: u64) -> SimDuration {
        SimDuration::from_cycles(cycles, self.ghz)
    }

    /// Cost of a work-stealing operation: 2–3 cache misses, 200–400 ns
    /// (paper §II-D). `misses` selects how unlucky the steal is.
    ///
    /// # Panics
    ///
    /// Panics if `misses` is zero.
    pub fn steal_cost(&self, misses: u32) -> SimDuration {
        assert!(misses > 0, "a steal costs at least one miss");
        // Each miss is a remote cache-line transfer plus coherence upgrade;
        // 2 misses ~ 200ns, 3 misses ~ 300-400ns at 2GHz with directory
        // indirection (~100ns effective per miss).
        SimDuration::from_ns(100) * misses as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_range_matches_paper() {
        let p = Pcie::default();
        assert_eq!(p.transfer(0), SimDuration::from_ns(200));
        assert!(p.transfer(64) > SimDuration::from_ns(200));
        assert!(p.transfer(64) < SimDuration::from_ns(300));
        assert_eq!(p.transfer(1 << 20), SimDuration::from_ns(800));
        // Monotone in size.
        assert!(p.transfer(512) <= p.transfer(2048));
    }

    #[test]
    fn qpi_constant() {
        assert_eq!(Qpi::default().transfer(), SimDuration::from_ns(150));
    }

    #[test]
    fn memory_defaults_ordered() {
        let m = MemoryModel::default();
        assert!(m.l1 < m.llc);
        assert!(m.llc < m.remote_cache);
        assert!(m.remote_cache < m.dram);
        // 70 cycles at 2GHz = 35ns (Shinjuku's dispatch floor).
        assert_eq!(m.remote_cache, SimDuration::from_ns(35));
    }

    #[test]
    fn steal_cost_in_paper_range() {
        let m = MemoryModel::default();
        let two = m.steal_cost(2);
        let three = m.steal_cost(3);
        assert!(two >= SimDuration::from_ns(200));
        assert!(three <= SimDuration::from_ns(400));
        assert!(two < three);
    }

    #[test]
    #[should_panic(expected = "at least one miss")]
    fn steal_cost_rejects_zero() {
        MemoryModel::default().steal_cost(0);
    }

    #[test]
    fn cycles_helper() {
        let m = MemoryModel::default();
        assert_eq!(m.cycles(70), SimDuration::from_ns(35));
    }
}
