//! # interconnect — on-chip and off-chip communication cost models
//!
//! The latency substrate of the Altocumulus reproduction (paper §VII-B):
//!
//! - [`noc`]: a 2-D mesh NoC with XY routing at 3 ns/hop, flit-level
//!   serialization, broadcast costing, and an injection-port contention
//!   tracker.
//! - [`offchip`]: PCIe (200–800 ns size-dependent), QPI (150 ns), and the
//!   memory hierarchy (L1 / LLC / remote-cache 70-cycle / DRAM) with
//!   work-stealing cost helpers.
//!
//! # Examples
//!
//! ```
//! use interconnect::noc::MeshNoc;
//! use interconnect::offchip::{MemoryModel, Pcie};
//!
//! let noc = MeshNoc::new_square(256);
//! // A 14-byte MIGRATE descriptor crossing half the mesh:
//! let lat = noc.latency(0, 255, 14);
//! assert!(lat.as_ns_f64() < 100.0);
//!
//! // Moving the same request over PCIe is an order of magnitude slower:
//! assert!(Pcie::default().transfer(14) > lat);
//!
//! // And a ZygOS-style steal costs 2-3 cache misses:
//! assert!(MemoryModel::default().steal_cost(2).as_ns_f64() >= 200.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod noc;
pub mod offchip;

pub use contention::ContendedNoc;
pub use noc::{MeshNoc, PortTracker, TileCoord};
pub use offchip::{MemoryModel, Pcie, Qpi};
