//! Contention-aware NoC transfers.
//!
//! The headline Altocumulus model treats its dedicated virtual network as
//! lightly loaded (paper §V-B chooses deterministic routing for exactly that
//! reason) and charges pure hop latency. This module provides the heavier
//! alternative: per-directed-link reservations along the XY route, so that
//! messages injected faster than links drain experience queueing — the
//! "new contention effects" the paper observes when migrating every 40 ns
//! (§VIII-D).

use crate::noc::MeshNoc;
use simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A directed link between neighbouring tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Link {
    from: u32,
    to: u32,
}

/// Tracks per-link occupancy on top of a [`MeshNoc`] and computes
/// contention-aware delivery times for XY-routed messages.
///
/// # Examples
///
/// ```
/// use interconnect::contention::ContendedNoc;
/// use interconnect::noc::MeshNoc;
/// use simcore::time::SimTime;
///
/// let mut noc = ContendedNoc::new(MeshNoc::new(4, 4));
/// let t0 = SimTime::ZERO;
/// let first = noc.send(0, 3, 14, t0);
/// let second = noc.send(0, 3, 14, t0); // same route, same instant
/// assert!(second > first, "the second message queues behind the first");
/// ```
#[derive(Debug, Clone)]
pub struct ContendedNoc {
    mesh: MeshNoc,
    busy_until: HashMap<Link, SimTime>,
}

impl ContendedNoc {
    /// Wraps a mesh with empty link state.
    pub fn new(mesh: MeshNoc) -> Self {
        ContendedNoc {
            mesh,
            busy_until: HashMap::new(),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &MeshNoc {
        &self.mesh
    }

    /// The XY route from `src` to `dst` as a list of tile ids (inclusive).
    pub fn route(&self, src: usize, dst: usize) -> Vec<u32> {
        let width = self.mesh.width();
        let a = self.mesh.coord(src);
        let b = self.mesh.coord(dst);
        let mut path = vec![src as u32];
        let (mut x, mut y) = (a.x, a.y);
        while x != b.x {
            x = if b.x > x { x + 1 } else { x - 1 };
            path.push(y * width + x);
        }
        while y != b.y {
            y = if b.y > y { y + 1 } else { y - 1 };
            path.push(y * width + x);
        }
        path
    }

    /// Sends a `bytes`-byte message at `now`, reserving every link on the
    /// route; returns the delivery instant including any queueing behind
    /// earlier traffic. A self-message is delivered after one local-forward
    /// flit with no link reservations.
    pub fn send(&mut self, src: usize, dst: usize, bytes: u32, now: SimTime) -> SimTime {
        let per_hop = SimDuration::from_ns(3);
        let flits = bytes.div_ceil(16).max(1) as u64;
        let serialize = per_hop * flits;
        if src == dst {
            return now + serialize;
        }
        let path = self.route(src, dst);
        let mut head = now;
        for pair in path.windows(2) {
            let link = Link {
                from: pair[0],
                to: pair[1],
            };
            let free = self.busy_until.get(&link).copied().unwrap_or(SimTime::ZERO);
            // The head flit crosses when the link frees; the link then stays
            // occupied for the message's serialization time (wormhole-ish).
            let cross = head.max(free) + per_hop;
            self.busy_until.insert(link, cross + serialize - per_hop);
            head = cross;
        }
        // The tail flit arrives one serialization window behind the head,
        // matching `MeshNoc::latency` in the uncontended case.
        head + serialize
    }

    /// Discards all reservations (e.g. between experiment repetitions).
    pub fn reset(&mut self) {
        self.busy_until.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_xy() {
        let noc = ContendedNoc::new(MeshNoc::new(4, 4));
        // 0=(0,0) -> 15=(3,3): x first (1,2,3) then y (7,11,15).
        assert_eq!(noc.route(0, 15), vec![0, 1, 2, 3, 7, 11, 15]);
        assert_eq!(noc.route(5, 5), vec![5]);
    }

    #[test]
    fn uncontended_matches_pure_latency_scale() {
        let mesh = MeshNoc::new(4, 4);
        let mut noc = ContendedNoc::new(mesh.clone());
        let t = noc.send(0, 15, 14, SimTime::ZERO);
        // 6 hops * 3ns + serialization 3ns = 21ns, matching MeshNoc::latency.
        assert_eq!(t, SimTime::ZERO + mesh.latency(0, 15, 14));
    }

    #[test]
    fn back_to_back_messages_queue() {
        let mut noc = ContendedNoc::new(MeshNoc::new(4, 4));
        let t0 = SimTime::ZERO;
        let mut last = t0;
        let mut deliveries = Vec::new();
        for _ in 0..8 {
            let d = noc.send(0, 3, 64, t0);
            assert!(d >= last);
            deliveries.push(d);
            last = d;
        }
        // Strictly increasing: each message waits behind the previous one's
        // serialization on the first link.
        for w in deliveries.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut noc = ContendedNoc::new(MeshNoc::new(4, 4));
        let t0 = SimTime::ZERO;
        let a = noc.send(0, 1, 14, t0);
        let b = noc.send(14, 15, 14, t0); // bottom-right corner, disjoint
        assert_eq!(a, t0 + SimDuration::from_ns(6));
        assert_eq!(b, t0 + SimDuration::from_ns(6));
    }

    #[test]
    fn contention_fades_with_time() {
        let mut noc = ContendedNoc::new(MeshNoc::new(4, 4));
        noc.send(0, 3, 1024, SimTime::ZERO); // long message
                                             // Much later traffic sees free links again.
        let late = SimTime::from_us(1);
        let d = noc.send(0, 3, 14, late);
        assert_eq!(d, late + SimDuration::from_ns(12));
    }

    #[test]
    fn reset_clears_state() {
        let mut noc = ContendedNoc::new(MeshNoc::new(4, 4));
        let t0 = SimTime::ZERO;
        let first = noc.send(0, 3, 64, t0);
        noc.reset();
        let again = noc.send(0, 3, 64, t0);
        assert_eq!(first, again);
    }
}
