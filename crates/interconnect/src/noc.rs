//! 2-D mesh network-on-chip model.
//!
//! The paper routes Altocumulus messages (UPDATE / MIGRATE / ACK / NACK) over
//! the NoC with deterministic XY routing, 3 ns per hop, on a dedicated
//! virtual network (§V-B, §VII-B). Because the dedicated virtual network is
//! lightly loaded, the dominant term is hop latency plus serialization of the
//! (small) payload; an optional per-node injection-port tracker captures
//! back-to-back send contention at very aggressive migration periods.

use simcore::time::{SimDuration, SimTime};
use std::ops::Range;

/// Coordinates of a tile in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileCoord {
    /// Column (x).
    pub x: u32,
    /// Row (y).
    pub y: u32,
}

/// A `width × height` mesh with XY (dimension-ordered, deadlock-free)
/// routing.
///
/// # Examples
///
/// ```
/// use interconnect::noc::MeshNoc;
///
/// let noc = MeshNoc::new_square(16); // 4x4 mesh of 16 tiles
/// assert_eq!(noc.hops(0, 15), 6);    // (0,0) -> (3,3)
/// assert_eq!(noc.latency(0, 15, 14).as_ns_f64(), 6.0 * 3.0 + 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct MeshNoc {
    width: u32,
    height: u32,
    per_hop: SimDuration,
    /// Bytes moved per flit.
    flit_bytes: u32,
    /// Serialization time per flit beyond the first (pipelined behind the
    /// head flit).
    per_flit: SimDuration,
}

impl MeshNoc {
    /// Creates a mesh with the paper's constants: 3 ns per hop, 16 B flits,
    /// one flit serialized per hop-time.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        MeshNoc {
            width,
            height,
            per_hop: SimDuration::from_ns(3),
            flit_bytes: 16,
            per_flit: SimDuration::from_ns(3),
        }
    }

    /// Creates the smallest square mesh holding at least `tiles` tiles.
    pub fn new_square(tiles: u32) -> Self {
        assert!(tiles > 0);
        let side = (tiles as f64).sqrt().ceil() as u32;
        Self::new(side, side)
    }

    /// Overrides the per-hop latency (default 3 ns).
    pub fn with_per_hop(mut self, per_hop: SimDuration) -> Self {
        self.per_hop = per_hop;
        self
    }

    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> u32 {
        self.width * self.height
    }

    /// Mesh width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Maps a linear tile id to coordinates (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn coord(&self, tile: usize) -> TileCoord {
        assert!((tile as u32) < self.tiles(), "tile {tile} out of range");
        TileCoord {
            x: tile as u32 % self.width,
            y: tile as u32 / self.width,
        }
    }

    /// Manhattan hop count between two tiles under XY routing.
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        let a = self.coord(src);
        let b = self.coord(dst);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Worst-case hop count in this mesh (corner to corner).
    pub fn diameter(&self) -> u32 {
        (self.width - 1) + (self.height - 1)
    }

    /// End-to-end latency for a `bytes`-byte message from `src` to `dst`:
    /// head-flit hop latency plus serialization of the body flits.
    /// A zero-hop (self) message still pays one flit of local forwarding.
    pub fn latency(&self, src: usize, dst: usize, bytes: u32) -> SimDuration {
        let hops = self.hops(src, dst);
        let flits = bytes.div_ceil(self.flit_bytes).max(1);
        self.per_hop * hops as u64 + self.per_flit * flits as u64
    }

    /// Conservative lookahead for a partitioned run: the minimum end-to-end
    /// latency of a `bytes`-byte message between the **manager tiles**
    /// (tile `g * group_size`) of any two groups in *different* partitions.
    ///
    /// Any cross-partition interaction in the model is carried by a NoC
    /// message between manager tiles, so no shard can affect another within
    /// this window — the parallel engine may run each partition
    /// independently for `L` of virtual time past a synchronization point.
    /// The bound includes head-flit serialization (`latency`, not raw
    /// hop count), exactly the earliest instant a message injected at the
    /// barrier could land remotely.
    ///
    /// # Panics
    ///
    /// Panics if any group's manager tile is out of mesh range, or if
    /// `parts` has fewer than two non-empty partitions (a serial run has no
    /// cross-partition latency to bound).
    pub fn min_cross_latency(
        &self,
        parts: &[Range<usize>],
        group_size: usize,
        bytes: u32,
    ) -> SimDuration {
        assert!(group_size > 0, "group_size must be positive");
        let mut best: Option<SimDuration> = None;
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                for ga in a.clone() {
                    for gb in b.clone() {
                        let l = self.latency(ga * group_size, gb * group_size, bytes);
                        best = Some(best.map_or(l, |c| c.min(l)));
                    }
                }
            }
        }
        best.expect("min_cross_latency needs at least two non-empty partitions")
    }

    /// Latency of a broadcast from `src` to every other tile (the UPDATE
    /// message): time until the *last* tile receives it, assuming one
    /// message per destination injected back-to-back.
    pub fn broadcast_latency(&self, src: usize, bytes: u32) -> SimDuration {
        let mut worst = SimDuration::ZERO;
        let flits = bytes.div_ceil(self.flit_bytes).max(1);
        let serialize = self.per_flit * flits as u64;
        for dst in 0..self.tiles() as usize {
            if dst == src {
                continue;
            }
            // The i-th message waits behind i−1 serializations at the port.
            let lat = self.latency(src, dst, bytes);
            worst = worst.max(lat);
        }
        // All (tiles-1) messages share the injection port.
        worst + serialize * (self.tiles() as u64 - 1)
    }
}

/// Tracks injection-port availability per tile, so that a node that sends
/// messages faster than one per serialization interval sees queueing — this
/// is what makes 40 ns migration periods counter-productive in Fig. 12.
#[derive(Debug, Clone)]
pub struct PortTracker {
    busy_until: Vec<SimTime>,
}

impl PortTracker {
    /// Creates a tracker for `tiles` injection ports, all idle.
    pub fn new(tiles: usize) -> Self {
        PortTracker {
            busy_until: vec![SimTime::ZERO; tiles],
        }
    }

    /// Reserves the port of `tile` at `now` for `hold`; returns the instant
    /// the message actually enters the network (≥ `now`).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn inject(&mut self, tile: usize, now: SimTime, hold: SimDuration) -> SimTime {
        let start = self.busy_until[tile].max(now);
        self.busy_until[tile] = start + hold;
        start
    }

    /// When the port of `tile` becomes free.
    pub fn free_at(&self, tile: usize) -> SimTime {
        self.busy_until[tile]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_mesh_sizes() {
        assert_eq!(MeshNoc::new_square(16).tiles(), 16);
        assert_eq!(MeshNoc::new_square(17).tiles(), 25);
        assert_eq!(MeshNoc::new_square(256).tiles(), 256);
        assert_eq!(MeshNoc::new_square(1).tiles(), 1);
    }

    #[test]
    fn coords_row_major() {
        let noc = MeshNoc::new(4, 4);
        assert_eq!(noc.coord(0), TileCoord { x: 0, y: 0 });
        assert_eq!(noc.coord(3), TileCoord { x: 3, y: 0 });
        assert_eq!(noc.coord(4), TileCoord { x: 0, y: 1 });
        assert_eq!(noc.coord(15), TileCoord { x: 3, y: 3 });
    }

    #[test]
    fn hops_manhattan() {
        let noc = MeshNoc::new(4, 4);
        assert_eq!(noc.hops(0, 0), 0);
        assert_eq!(noc.hops(0, 3), 3);
        assert_eq!(noc.hops(0, 12), 3);
        assert_eq!(noc.hops(0, 15), 6);
        assert_eq!(noc.hops(5, 10), 2);
        // Symmetric.
        assert_eq!(noc.hops(2, 13), noc.hops(13, 2));
    }

    #[test]
    fn diameter() {
        assert_eq!(MeshNoc::new(4, 4).diameter(), 6);
        assert_eq!(MeshNoc::new(16, 16).diameter(), 30);
    }

    #[test]
    fn latency_three_ns_per_hop() {
        let noc = MeshNoc::new(4, 4);
        // 14B descriptor = 1 flit.
        let l = noc.latency(0, 15, 14);
        assert_eq!(l.as_ns_f64(), 6.0 * 3.0 + 3.0);
        // Bigger payloads serialize more flits.
        let big = noc.latency(0, 15, 14 * 40); // bulk of 40 descriptors
        assert!(big > l);
        assert_eq!(big.as_ns_f64(), 18.0 + (560f64 / 16.0).ceil() * 3.0);
    }

    #[test]
    fn self_message_pays_one_flit() {
        let noc = MeshNoc::new(4, 4);
        assert_eq!(noc.latency(3, 3, 14), SimDuration::from_ns(3));
    }

    #[test]
    fn broadcast_dominated_by_port_serialization() {
        let noc = MeshNoc::new(4, 4);
        let b = noc.broadcast_latency(0, 14);
        // 15 messages serialize at 3ns plus the farthest hop (18ns+3ns flit).
        assert_eq!(b.as_ns_f64(), 21.0 + 15.0 * 3.0);
    }

    #[test]
    fn port_tracker_serializes() {
        let mut p = PortTracker::new(2);
        let t0 = SimTime::from_ns(100);
        let hold = SimDuration::from_ns(3);
        assert_eq!(p.inject(0, t0, hold), t0);
        assert_eq!(p.inject(0, t0, hold), t0 + hold);
        assert_eq!(p.inject(0, t0, hold), t0 + hold * 2);
        // Other tile unaffected.
        assert_eq!(p.inject(1, t0, hold), t0);
        assert_eq!(p.free_at(0), t0 + hold * 3);
    }

    #[test]
    fn port_tracker_idles_forward() {
        let mut p = PortTracker::new(1);
        p.inject(0, SimTime::from_ns(10), SimDuration::from_ns(3));
        // After the port drains, a later injection is not delayed.
        assert_eq!(
            p.inject(0, SimTime::from_ns(100), SimDuration::from_ns(3)),
            SimTime::from_ns(100)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_bounds_checked() {
        MeshNoc::new(2, 2).coord(4);
    }

    #[test]
    fn min_cross_latency_is_nearest_manager_pair() {
        // 4x4 mesh, 4 groups of 4: managers at tiles 0, 4, 8, 12 — a single
        // column, one hop apart. Any two adjacent groups in different
        // partitions give hops=1.
        let noc = MeshNoc::new(4, 4);
        let l = noc.min_cross_latency(&[0..2, 2..4], 4, 14);
        // Tile 4 (group 1) -> tile 8 (group 2): 1 hop + 1 flit.
        assert_eq!(l, SimDuration::from_ns(3 + 3));
        // Splitting groups {0,2} vs {1,3} gives the same manager spacing.
        let perm = noc.min_cross_latency(&[2..4, 0..2], 4, 14);
        assert_eq!(perm, l);
    }

    #[test]
    fn min_cross_latency_grows_with_partition_distance() {
        // 16 groups of 1 on a 4x4 mesh: managers are every tile. Rows 0-1 vs
        // rows 2-3 still touch (1 hop); single corner groups are far apart.
        let noc = MeshNoc::new(4, 4);
        let near = noc.min_cross_latency(&[0..8, 8..16], 1, 14);
        assert_eq!(near, SimDuration::from_ns(6));
        let far = noc.min_cross_latency(&[0..1, 15..16], 1, 14);
        assert_eq!(far, SimDuration::from_ns(6 * 3 + 3));
        assert!(far > near);
    }

    #[test]
    #[should_panic(expected = "at least two non-empty partitions")]
    // A one-element array of ranges is exactly the invalid input under test.
    #[allow(clippy::single_range_in_vec_init)]
    fn min_cross_latency_rejects_single_partition() {
        MeshNoc::new(4, 4).min_cross_latency(&[0..4], 4, 14);
    }
}
