//! Centralized dispatcher with preemption (Shinjuku-style c-FCFS).
//!
//! Shinjuku \[26\] dedicates one core to networking + dispatch and preempts
//! long requests every few microseconds, eliminating head-of-line blocking.
//! Its published bottlenecks (paper §II-D, Table I) drive this model:
//!
//! - the dispatcher core serializes dispatches (~5 M requests/s, i.e. about
//!   200 ns per dispatch through the cache-coherence protocol);
//! - preemption costs a context switch / IPI, so the quantum is ~5 µs;
//! - one core is lost to dispatching.

use crate::common::{OccTable, QueuedRequest, RpcSystem, SystemResult};
use rpcstack::nic::{NicModel, Transfer};
use rpcstack::stack::StackModel;
use simcore::event::{run_streamed, EventQueue, StreamInjector, World};
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::request::Completion;
use workload::trace::Trace;

/// Configuration of the centralized-dispatch system.
#[derive(Debug, Clone)]
pub struct CentralConfig {
    /// Total cores; one is dedicated to the dispatcher, the rest execute
    /// handlers.
    pub cores: usize,
    /// RPC stack cost charged per request.
    pub stack: StackModel,
    /// NIC→dispatcher transfer.
    pub transfer: Transfer,
    /// On-NIC processing.
    pub nic: NicModel,
    /// Serialized per-dispatch cost on the dispatcher core (default 200 ns —
    /// Shinjuku's ~5 MRPS ceiling).
    pub dispatch_cost: SimDuration,
    /// Preemption quantum: a handler running longer is descheduled and
    /// requeued (default 5 µs). `None` disables preemption.
    pub quantum: Option<SimDuration>,
    /// Overhead paid by the worker on each preemption (IPI + context switch).
    pub preempt_overhead: SimDuration,
}

impl CentralConfig {
    /// Shinjuku defaults.
    pub fn shinjuku(cores: usize) -> Self {
        CentralConfig {
            cores,
            stack: StackModel::erpc(),
            transfer: Transfer::pcie(),
            nic: NicModel::default(),
            dispatch_cost: SimDuration::from_ns(200),
            quantum: Some(SimDuration::from_us(5)),
            preempt_overhead: SimDuration::from_ns(300),
        }
    }
}

/// The centralized-dispatcher system. See [module docs](self).
#[derive(Debug, Clone)]
pub struct CentralDispatch {
    cfg: CentralConfig,
}

impl CentralDispatch {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if `cores < 2` (dispatcher + at least one worker).
    pub fn new(cfg: CentralConfig) -> Self {
        assert!(cfg.cores >= 2, "need a dispatcher plus at least one worker");
        CentralDispatch { cfg }
    }

    /// Number of handler-executing workers.
    pub fn workers(&self) -> usize {
        self.cfg.cores - 1
    }
}

enum Ev {
    /// Request delivered to the dispatcher's central queue.
    Enqueue(usize),
    /// Dispatcher finished pushing a request to worker `w`.
    Deliver(usize, QueuedRequest),
    /// Worker `w` finished its current slice.
    SliceDone(usize),
    /// Worker `w` finished paying its preemption overhead.
    WorkerFree(usize),
    /// Dispatcher becomes free again.
    DispatcherFree,
}

struct CentralWorld<'t> {
    trace: &'t Trace,
    cfg: CentralConfig,
    central: VecDeque<QueuedRequest>,
    /// Worker slot: None = idle, Some = reserved or running.
    busy: Vec<Option<QueuedRequest>>,
    /// Hot plane: 0/1 busy flags mirrored from `busy`, so the dispatcher's
    /// first-idle scan reads one dense word per worker instead of walking
    /// the descriptor slots.
    occ: OccTable,
    dispatcher_free_at: SimTime,
    result: SystemResult,
}

impl CentralWorld<'_> {
    fn try_dispatch(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.dispatcher_free_at > now {
            return; // a DispatcherFree event is already pending
        }
        if self.central.is_empty() {
            return;
        }
        let Some(widx) = self.occ.first_idle(0..self.busy.len()) else {
            return;
        };
        debug_assert!(self.busy[widx].is_none());
        let qr = self.central.pop_front().expect("non-empty central queue");
        // Reserve the worker for the in-flight delivery.
        self.busy[widx] = Some(qr);
        self.occ.incr(widx);
        let done_at = now + self.cfg.dispatch_cost;
        self.dispatcher_free_at = done_at;
        q.push(done_at, Ev::Deliver(widx, qr));
        q.push(done_at, Ev::DispatcherFree);
    }
}

impl World for CentralWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Enqueue(idx) => {
                let req = &self.trace.requests()[idx];
                // Total on-core work: stack rx + handler + stack tx.
                let total = self.cfg.stack.rx(req.size_bytes) + req.service + self.cfg.stack.tx(64);
                self.central.push_back(QueuedRequest::new(idx, total, now));
                self.try_dispatch(now, q);
            }
            Ev::Deliver(widx, qr) => {
                let slice = match self.cfg.quantum {
                    Some(qt) => qr.remaining.min(qt),
                    None => qr.remaining,
                };
                self.busy[widx] = Some(qr);
                q.push(now + slice, Ev::SliceDone(widx));
            }
            Ev::SliceDone(widx) => {
                let mut qr = self.busy[widx].take().expect("slice on idle worker");
                let ran = match self.cfg.quantum {
                    Some(qt) => qr.remaining.min(qt),
                    None => qr.remaining,
                };
                qr.remaining = qr.remaining.saturating_sub(ran);
                if qr.remaining.is_zero() {
                    self.occ.decr(widx);
                    let req = &self.trace.requests()[qr.idx];
                    self.result.record(Completion {
                        id: req.id,
                        arrival: req.arrival,
                        finish: now,
                        core: widx + 1, // worker cores are 1..cores
                        migrated: false,
                    });
                    self.try_dispatch(now, q);
                } else {
                    // Preempted: requeue at the central tail; the worker pays
                    // the context-switch overhead before it is usable again,
                    // so keep it reserved until WorkerFree fires.
                    self.busy[widx] = Some(qr);
                    self.central.push_back(qr);
                    q.push(now + self.cfg.preempt_overhead, Ev::WorkerFree(widx));
                }
            }
            Ev::WorkerFree(widx) => {
                self.busy[widx] = None;
                self.occ.decr(widx);
                self.try_dispatch(now, q);
            }
            Ev::DispatcherFree => {
                self.try_dispatch(now, q);
            }
        }
    }
}

impl RpcSystem for CentralDispatch {
    fn name(&self) -> String {
        format!("Shinjuku({})", self.cfg.cores)
    }

    fn run(&mut self, trace: &Trace) -> SystemResult {
        // Arrivals stream into the queue in chunks as time advances; seqs
        // reserved in trace order keep the pop order byte-identical to an
        // upfront pre-push while the queue stays O(in-flight).
        let mut queue = EventQueue::new();
        let base_seq = queue.reserve_seqs(trace.len() as u64);
        let requests = trace.requests();
        let mac_delay = self.cfg.nic.mac_delay;
        let transfer = self.cfg.transfer;
        let mut source = StreamInjector::new(
            trace.len(),
            base_seq,
            |i: usize| requests[i].arrival + mac_delay,
            |i: usize| {
                let req = &requests[i];
                let deliver = req.arrival + mac_delay + transfer.latency(req.size_bytes);
                (deliver, Ev::Enqueue(i))
            },
        );
        let mut world = CentralWorld {
            trace,
            cfg: self.cfg.clone(),
            central: VecDeque::new(),
            busy: vec![None; self.cfg.cores - 1],
            occ: OccTable::new(self.cfg.cores - 1),
            dispatcher_free_at: SimTime::ZERO,
            result: SystemResult::with_capacity(trace.len()),
        };
        run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
        world.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stealing::{StealingConfig, WorkStealing};
    use workload::arrival::PoissonProcess;
    use workload::dist::ServiceDistribution;
    use workload::trace::TraceBuilder;

    fn trace(dist: ServiceDistribution, load: f64, cores: usize, n: usize) -> Trace {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(n)
            .connections(64)
            .seed(21)
            .build()
    }

    #[test]
    fn completes_all() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.5,
            8,
            5000,
        );
        let r = CentralDispatch::new(CentralConfig::shinjuku(8)).run(&t);
        assert_eq!(r.completions.len(), 5000);
    }

    #[test]
    fn preemption_caps_short_request_wait() {
        // Bimodal: shorts behind a long must not wait the full 500us. At
        // load 0.75 idle cores are scarce, so ZygOS's steal-at-idle can no
        // longer rescue blocked shorts, while preemption still does.
        let t = trace(ServiceDistribution::bimodal_paper(), 0.75, 16, 60_000);
        let shin = CentralDispatch::new(CentralConfig::shinjuku(16)).run(&t);
        let zygos = WorkStealing::new(StealingConfig::zygos(16)).run(&t);
        // The 0.5% long requests exceed 300us by construction, so compare
        // how many *additional* requests (shorts stuck behind longs) blow
        // the 300us SLO: preemption should save nearly all of them.
        let slo = SimDuration::from_us(300);
        let s = shin.violation_ratio(slo);
        let z = zygos.violation_ratio(slo);
        assert!(s < z, "Shinjuku violations {s} should be below ZygOS {z}");
        // Shinjuku leaves mostly the longs themselves violating (~0.5%).
        assert!(s < 0.03, "Shinjuku violation ratio {s}");
    }

    #[test]
    fn dispatcher_throughput_bounded() {
        // Offered rate above the dispatcher's 5 MRPS: completions lag far
        // behind and latency explodes. Use tiny service so the workers are
        // never the constraint.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(50));
        let rate = 8e6; // 8 MRPS > 5 MRPS dispatcher cap
        let t = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(40_000)
            .seed(3)
            .build();
        let r = CentralDispatch::new(CentralConfig::shinjuku(16)).run(&t);
        // Achieved throughput is pinned near the dispatcher cap.
        let achieved = r.throughput_rps();
        assert!(
            achieved < 5.5e6,
            "achieved {achieved} should be capped by the dispatcher"
        );
        assert!(achieved > 4.0e6);
    }

    #[test]
    fn preemption_disabled_blocks() {
        let t = trace(ServiceDistribution::bimodal_paper(), 0.4, 8, 20_000);
        let with = CentralDispatch::new(CentralConfig::shinjuku(8)).run(&t);
        let without = CentralDispatch::new(CentralConfig {
            quantum: None,
            ..CentralConfig::shinjuku(8)
        })
        .run(&t);
        let slo = SimDuration::from_us(300);
        assert!(with.violation_ratio(slo) <= without.violation_ratio(slo));
    }

    #[test]
    fn deterministic() {
        let t = trace(ServiceDistribution::bimodal_paper(), 0.5, 8, 5000);
        let a = CentralDispatch::new(CentralConfig::shinjuku(8)).run(&t);
        let b = CentralDispatch::new(CentralConfig::shinjuku(8)).run(&t);
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    #[should_panic(expected = "dispatcher plus at least one worker")]
    fn rejects_single_core() {
        CentralDispatch::new(CentralConfig::shinjuku(1));
    }

    #[test]
    fn workers_excludes_dispatcher() {
        assert_eq!(
            CentralDispatch::new(CentralConfig::shinjuku(16)).workers(),
            15
        );
    }
}
