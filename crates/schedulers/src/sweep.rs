//! Load sweeps and throughput@SLO search.
//!
//! The paper's primary metric is *throughput@SLO*: the highest offered load
//! whose measured 99th-percentile latency stays within the SLO (§II-A).
//! [`throughput_at_slo`] finds it by bisection over a caller-provided
//! evaluation closure, so it works for every system in this workspace.

use simcore::time::SimDuration;

/// One point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load (fraction of system capacity).
    pub load: f64,
    /// Measured p99 latency at that load.
    pub p99: SimDuration,
}

/// Evaluates `eval` at each load in `loads` and returns the series.
pub fn sweep_loads<F>(loads: &[f64], mut eval: F) -> Vec<SweepPoint>
where
    F: FnMut(f64) -> SimDuration,
{
    loads
        .iter()
        .map(|&load| SweepPoint {
            load,
            p99: eval(load),
        })
        .collect()
}

/// Finds the highest load in `[lo, hi]` with `eval(load) <= slo`, to within
/// `tol` of load, by bisection. Returns `None` if even `lo` violates.
///
/// `eval` must be monotone-ish in load (tail latency grows with load), which
/// holds for all the queueing systems here.
///
/// # Panics
///
/// Panics if the interval or tolerance is malformed.
///
/// # Examples
///
/// ```
/// use schedulers::sweep::throughput_at_slo;
/// use simcore::time::SimDuration;
///
/// // A toy system whose p99 is load*10us.
/// let best = throughput_at_slo(
///     |load| SimDuration::from_ns_f64(load * 10_000.0),
///     SimDuration::from_us(5),
///     0.05, 1.0, 0.01,
/// );
/// let best = best.unwrap();
/// assert!((best - 0.5).abs() < 0.02, "best={best}");
/// ```
pub fn throughput_at_slo<F>(
    mut eval: F,
    slo: SimDuration,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Option<f64>
where
    F: FnMut(f64) -> SimDuration,
{
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(tol > 0.0, "tolerance must be positive");
    if eval(lo) > slo {
        return None;
    }
    let (mut good, mut bad) = (lo, hi);
    if eval(hi) <= slo {
        return Some(hi);
    }
    while bad - good > tol {
        let mid = (good + bad) / 2.0;
        if eval(mid) <= slo {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Some(good)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_crossover() {
        // p99 = load^2 * 100us; SLO 25us -> load 0.5.
        let f = |load: f64| SimDuration::from_ns_f64(load * load * 100_000.0);
        let best = throughput_at_slo(f, SimDuration::from_us(25), 0.05, 1.0, 0.005).unwrap();
        assert!((best - 0.5).abs() < 0.01, "best={best}");
    }

    #[test]
    fn returns_hi_if_never_violates() {
        let f = |_| SimDuration::from_ns(1);
        assert_eq!(
            throughput_at_slo(f, SimDuration::from_us(1), 0.1, 0.95, 0.01),
            Some(0.95)
        );
    }

    #[test]
    fn returns_none_if_always_violates() {
        let f = |_| SimDuration::from_ms(1);
        assert_eq!(
            throughput_at_slo(f, SimDuration::from_us(1), 0.1, 0.95, 0.01),
            None
        );
    }

    #[test]
    fn sweep_produces_all_points() {
        let pts = sweep_loads(&[0.1, 0.5, 0.9], |l| SimDuration::from_ns_f64(l * 100.0));
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].load, 0.5);
        assert_eq!(pts[2].p99, SimDuration::from_ns(90));
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn rejects_bad_interval() {
        throughput_at_slo(|_| SimDuration::ZERO, SimDuration::from_ns(1), 0.5, 0.2, 0.01);
    }
}
