//! Load sweeps and throughput@SLO search.
//!
//! The paper's primary metric is *throughput@SLO*: the highest offered load
//! whose measured 99th-percentile latency stays within the SLO (§II-A).
//! [`throughput_at_slo`] finds it by bisection over a caller-provided
//! evaluation closure, so it works for every system in this workspace.
//! [`throughput_at_slo_search`] additionally memoizes every evaluated load
//! and returns the full series, so figure binaries can plot the sweep the
//! search already paid for instead of re-simulating it.

use simcore::time::SimDuration;

/// One point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load (fraction of system capacity).
    pub load: f64,
    /// Measured p99 latency at that load.
    pub p99: SimDuration,
}

/// Evaluates `eval` at each load in `loads` and returns the series.
pub fn sweep_loads<F>(loads: &[f64], mut eval: F) -> Vec<SweepPoint>
where
    F: FnMut(f64) -> SimDuration,
{
    loads
        .iter()
        .map(|&load| SweepPoint {
            load,
            p99: eval(load),
        })
        .collect()
}

/// Evaluates `eval` at each load on `threads` worker threads and returns the
/// series in load order.
///
/// Each load's evaluation must be self-contained (build its own trace and
/// system from the load value); under that contract the result is identical
/// to [`sweep_loads`] for any thread count.
pub fn sweep_loads_parallel<F>(loads: &[f64], threads: usize, eval: F) -> Vec<SweepPoint>
where
    F: Fn(f64) -> SimDuration + Sync,
{
    simcore::parallel_map(loads.to_vec(), threads, |_, load| SweepPoint {
        load,
        p99: eval(load),
    })
}

/// Result of a [`throughput_at_slo_search`]: the best load plus every point
/// the bisection evaluated along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSearch {
    /// Highest load meeting the SLO, or `None` if even the lower bound
    /// violates it.
    pub best: Option<f64>,
    /// Every `(load, p99)` the search evaluated, sorted by load. Each load
    /// is evaluated (and appears) at most once.
    pub evaluated: Vec<SweepPoint>,
}

/// Finds the highest load in `[lo, hi]` with `eval(load) <= slo`, to within
/// `tol` of load, by bisection — and returns the full evaluation series.
///
/// Evaluated loads are memoized, so a load is never simulated twice even if
/// the bisection endpoints revisit it.
///
/// `eval` must be monotone-ish in load (tail latency grows with load), which
/// holds for all the queueing systems here.
///
/// # Panics
///
/// Panics if the interval or tolerance is malformed.
pub fn throughput_at_slo_search<F>(
    mut eval: F,
    slo: SimDuration,
    lo: f64,
    hi: f64,
    tol: f64,
) -> SloSearch
where
    F: FnMut(f64) -> SimDuration,
{
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(tol > 0.0, "tolerance must be positive");
    // Memo kept sorted by load: a handful of bisection probes makes binary
    // search cheaper than hashing, and the evaluated series falls out
    // already sorted and deduplicated.
    let mut cache: Vec<(f64, SimDuration)> = Vec::new();
    let mut cached_eval = |load: f64| -> SimDuration {
        match cache.binary_search_by(|(l, _)| l.partial_cmp(&load).expect("loads are finite")) {
            Ok(i) => cache[i].1,
            Err(i) => {
                let p99 = eval(load);
                cache.insert(i, (load, p99));
                p99
            }
        }
    };

    let best = 'search: {
        if cached_eval(lo) > slo {
            break 'search None;
        }
        if cached_eval(hi) <= slo {
            break 'search Some(hi);
        }
        let (mut good, mut bad) = (lo, hi);
        while bad - good > tol {
            let mid = (good + bad) / 2.0;
            if cached_eval(mid) <= slo {
                good = mid;
            } else {
                bad = mid;
            }
        }
        Some(good)
    };

    let evaluated: Vec<SweepPoint> = cache
        .into_iter()
        .map(|(load, p99)| SweepPoint { load, p99 })
        .collect();
    SloSearch { best, evaluated }
}

/// Finds the highest load in `[lo, hi]` with `eval(load) <= slo`, to within
/// `tol` of load, by bisection. Returns `None` if even `lo` violates.
///
/// Convenience wrapper over [`throughput_at_slo_search`] for callers that
/// only want the crossover load.
///
/// # Panics
///
/// Panics if the interval or tolerance is malformed.
///
/// # Examples
///
/// ```
/// use schedulers::sweep::throughput_at_slo;
/// use simcore::time::SimDuration;
///
/// // A toy system whose p99 is load*10us.
/// let best = throughput_at_slo(
///     |load| SimDuration::from_ns_f64(load * 10_000.0),
///     SimDuration::from_us(5),
///     0.05, 1.0, 0.01,
/// );
/// let best = best.unwrap();
/// assert!((best - 0.5).abs() < 0.02, "best={best}");
/// ```
pub fn throughput_at_slo<F>(eval: F, slo: SimDuration, lo: f64, hi: f64, tol: f64) -> Option<f64>
where
    F: FnMut(f64) -> SimDuration,
{
    throughput_at_slo_search(eval, slo, lo, hi, tol).best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_crossover() {
        // p99 = load^2 * 100us; SLO 25us -> load 0.5.
        let f = |load: f64| SimDuration::from_ns_f64(load * load * 100_000.0);
        let best = throughput_at_slo(f, SimDuration::from_us(25), 0.05, 1.0, 0.005).unwrap();
        assert!((best - 0.5).abs() < 0.01, "best={best}");
    }

    #[test]
    fn returns_hi_if_never_violates() {
        let f = |_| SimDuration::from_ns(1);
        assert_eq!(
            throughput_at_slo(f, SimDuration::from_us(1), 0.1, 0.95, 0.01),
            Some(0.95)
        );
    }

    #[test]
    fn returns_none_if_always_violates() {
        let f = |_| SimDuration::from_ms(1);
        assert_eq!(
            throughput_at_slo(f, SimDuration::from_us(1), 0.1, 0.95, 0.01),
            None
        );
    }

    #[test]
    fn search_never_evaluates_a_load_twice() {
        let mut evals = Vec::new();
        let search = throughput_at_slo_search(
            |load| {
                evals.push(load);
                SimDuration::from_ns_f64(load * load * 100_000.0)
            },
            SimDuration::from_us(25),
            0.05,
            1.0,
            0.005,
        );
        let mut uniq = evals.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        assert_eq!(uniq.len(), evals.len(), "duplicate evaluations: {evals:?}");
        assert_eq!(search.evaluated.len(), evals.len());
        assert!((search.best.unwrap() - 0.5).abs() < 0.01);
    }

    #[test]
    fn search_reports_sorted_series() {
        let search = throughput_at_slo_search(
            |load| SimDuration::from_ns_f64(load * 10_000.0),
            SimDuration::from_us(5),
            0.05,
            1.0,
            0.01,
        );
        assert!(search.evaluated.windows(2).all(|w| w[0].load < w[1].load));
        // The series includes the bounds and every midpoint probed.
        assert!(search.evaluated.len() >= 2);
    }

    #[test]
    fn evaluated_series_sorted_and_deduplicated() {
        let mut evals = Vec::new();
        let search = throughput_at_slo_search(
            |load| {
                evals.push(load);
                SimDuration::from_ns_f64(load * load * 100_000.0)
            },
            SimDuration::from_us(25),
            0.05,
            1.0,
            0.001, // deep bisection: many probed loads
        );
        // Strictly increasing: sorted with no duplicate loads.
        assert!(
            search.evaluated.windows(2).all(|w| w[0].load < w[1].load),
            "series must be strictly increasing"
        );
        // The series is exactly the set of evaluated loads, nothing more.
        let mut expected = evals.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.dedup();
        assert_eq!(
            search.evaluated.iter().map(|p| p.load).collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn search_none_still_reports_lo() {
        let search = throughput_at_slo_search(
            |_| SimDuration::from_ms(1),
            SimDuration::from_us(1),
            0.1,
            0.95,
            0.01,
        );
        assert_eq!(search.best, None);
        assert_eq!(search.evaluated.len(), 1);
        assert_eq!(search.evaluated[0].load, 0.1);
    }

    #[test]
    fn sweep_produces_all_points() {
        let pts = sweep_loads(&[0.1, 0.5, 0.9], |l| SimDuration::from_ns_f64(l * 100.0));
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].load, 0.5);
        assert_eq!(pts[2].p99, SimDuration::from_ns(90));
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let f = |l: f64| SimDuration::from_ns_f64(l * l * 77_000.0);
        let loads = [0.1, 0.3, 0.5, 0.7, 0.9, 0.99];
        let serial = sweep_loads(&loads, f);
        for threads in [1, 2, 4] {
            assert_eq!(sweep_loads_parallel(&loads, threads, f), serial);
        }
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn rejects_bad_interval() {
        throughput_at_slo(
            |_| SimDuration::ZERO,
            SimDuration::from_ns(1),
            0.5,
            0.2,
            0.01,
        );
    }
}
