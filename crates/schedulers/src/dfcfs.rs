//! d-FCFS: NIC-steered per-core queues with no load balancing.
//!
//! This models IX \[8\] and plain RSS NICs (paper §II-D, Fig. 4(b) without the
//! stealing arrows): the NIC hashes each request to a per-core receive queue
//! and every core serves its own queue FCFS, run-to-completion. Scalable but
//! load-oblivious — the paper's example of unpredictable tail latency under
//! imbalance or dispersed service times.

use crate::common::{on_core_cost, OccTable, QueuedRequest, RpcSystem, SystemResult};
use rand::rngs::StdRng;
use rpcstack::nic::{NicModel, Steering, Transfer};
use rpcstack::stack::StackModel;
use simcore::event::{run_streamed, EventQueue, EventSource, StreamInjector, World};
use simcore::faults::FaultPlan;
use simcore::rng::{stream_rng, streams};
use simcore::time::{SimDuration, SimTime};
use simcore::timeline::{worker_plane, Timeline, WorkerPlane};
use std::collections::VecDeque;
use workload::request::Completion;
use workload::trace::Trace;

/// Configuration of a d-FCFS system.
#[derive(Debug, Clone)]
pub struct DFcfsConfig {
    /// Number of worker cores (= receive queues).
    pub cores: usize,
    /// RPC stack processed on each core.
    pub stack: StackModel,
    /// NIC→core transfer mechanism.
    pub transfer: Transfer,
    /// On-NIC processing.
    pub nic: NicModel,
    /// Steering policy.
    pub steering: Steering,
    /// Fixed per-request scheduling overhead on the core (d-FCFS's private
    /// queue poll is cheap; default 10 ns).
    pub sched_overhead: SimDuration,
    /// RNG seed for steering decisions.
    pub seed: u64,
    /// Worker-plane engine. d-FCFS's `Done` events are the textbook
    /// locally-determined class — each core's completion schedule is its
    /// own lane, untouched by any other core — so `Elided` (the default)
    /// parks them on an analytic [`Timeline`] instead of the main event
    /// queue. Byte-identical to `EventDriven` (the differential oracle);
    /// non-empty fault plans downgrade wholesale to `EventDriven`, since
    /// `Fail` truncates a core's schedule mid-flight.
    pub worker_plane: WorkerPlane,
    /// Injected faults. d-FCFS has no recovery path: a dead core's queued
    /// and future-steered requests are simply lost (the RSS hash keeps
    /// pointing at the dead queue), which is the non-graceful comparison
    /// point for the fault sweep. The default empty plan reproduces healthy
    /// runs byte-for-byte.
    pub faults: FaultPlan,
}

impl DFcfsConfig {
    /// IX-like defaults: TCP-era stack on a PCIe RSS NIC.
    pub fn ix(cores: usize) -> Self {
        DFcfsConfig {
            cores,
            stack: StackModel::erpc(),
            transfer: Transfer::pcie(),
            nic: NicModel::default(),
            steering: Steering::rss(),
            sched_overhead: SimDuration::from_ns(10),
            seed: 0,
            worker_plane: WorkerPlane::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Commodity RSS NIC with an eRPC-class user-space stack.
    pub fn rss(cores: usize) -> Self {
        Self::ix(cores)
    }
}

/// The d-FCFS system. See [module docs](self).
#[derive(Debug, Clone)]
pub struct DFcfs {
    cfg: DFcfsConfig,
}

impl DFcfs {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cfg: DFcfsConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        cfg.faults.validate();
        for f in &cfg.faults.worker_failures {
            assert!(f.core < cfg.cores, "failure targets a nonexistent core");
        }
        DFcfs { cfg }
    }
}

enum Ev {
    /// Request `idx` reaches its steered queue.
    Enqueue(usize, usize),
    /// Core finished its in-service request.
    Done(usize),
    /// Fault plan: the core fails permanently. Never pushed by healthy runs.
    Fail(usize),
}

struct DFcfsWorld<'t> {
    trace: &'t Trace,
    cfg: DFcfsConfig,
    queues: Vec<VecDeque<QueuedRequest>>,
    in_service: Vec<Option<QueuedRequest>>,
    /// Hot plane: 0/1 busy flags mirrored from `in_service`, with
    /// fail-stopped cores folded in as the dead sentinel — the arrival
    /// path's idle and liveness checks read this one dense word.
    occ: OccTable,
    /// Elided worker plane: one `Done` class lane (scheduled at
    /// `now + on-core cost`, so near-sorted up to the service-time
    /// spread), merged with the main queue by `(time, seq)`. `None` runs
    /// the per-event oracle.
    timeline: Option<Timeline<usize>>,
    result: SystemResult,
}

impl DFcfsWorld<'_> {
    fn start(&mut self, core: usize, qr: QueuedRequest, now: SimTime, q: &mut EventQueue<Ev>) {
        let req = &self.trace.requests()[qr.idx];
        let cost = on_core_cost(
            self.cfg.stack.rx(req.size_bytes),
            self.cfg.stack.tx(64),
            req,
            self.cfg.sched_overhead,
        );
        // Straggler inflation is identity when no interval covers this
        // core/instant (bit-for-bit, see simcore::faults).
        let wall = self.cfg.faults.inflate(core, now, cost);
        self.in_service[core] = Some(qr);
        self.occ.incr(core);
        match &mut self.timeline {
            // Seq reserved from the main queue at the exact instant the
            // oracle's push would claim it: the merged order is the
            // oracle's, ties included.
            Some(tl) => tl.push(0, now + wall, q.reserve_seqs(1), core),
            None => q.push(now + wall, Ev::Done(core)),
        }
    }
}

impl World for DFcfsWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Enqueue(idx, core) => {
                if self.occ.is_dead(core) {
                    // No rebalancing path exists: the request is lost.
                    return;
                }
                let req = &self.trace.requests()[idx];
                let qr = QueuedRequest::new(idx, req.service, now);
                if self.occ.get(core) == 0 {
                    debug_assert!(self.in_service[core].is_none());
                    self.start(core, qr, now, q);
                } else {
                    self.queues[core].push_back(qr);
                }
            }
            Ev::Done(core) => {
                if self.occ.is_dead(core) {
                    // Stale completion from before the core's death.
                    return;
                }
                let qr = self.in_service[core].take().expect("Done on an idle core");
                self.occ.decr(core);
                let req = &self.trace.requests()[qr.idx];
                self.result.record(Completion {
                    id: req.id,
                    arrival: req.arrival,
                    finish: now,
                    core,
                    migrated: false,
                });
                if let Some(next) = self.queues[core].pop_front() {
                    self.start(core, next, now, q);
                }
            }
            Ev::Fail(core) => {
                // Fail-stop: the running request and everything queued
                // behind it are lost, as is everything the NIC steers here
                // from now on.
                self.occ.mark_dead(core);
                self.in_service[core] = None;
                self.queues[core].clear();
            }
        }
    }
}

impl RpcSystem for DFcfs {
    fn name(&self) -> String {
        format!("d-FCFS/{}({})", self.cfg.steering.label(), self.cfg.cores)
    }

    fn run(&mut self, trace: &Trace) -> SystemResult {
        let mut steering = self.cfg.steering.clone();
        let mut rng: StdRng = stream_rng(self.cfg.seed, streams::NIC);
        // Streamed arrivals: seqs reserved in trace order keep pop order —
        // and the per-arrival steering RNG draws — identical to the old
        // upfront pre-push, with an O(in-flight) queue.
        let mut queue = EventQueue::new();
        let base_seq = queue.reserve_seqs(trace.len() as u64);
        let requests = trace.requests();
        let mac_delay = self.cfg.nic.mac_delay;
        let transfer = self.cfg.transfer;
        let cores = self.cfg.cores;
        let mut source = StreamInjector::new(
            trace.len(),
            base_seq,
            |i: usize| requests[i].arrival + mac_delay,
            |i: usize| {
                let req = &requests[i];
                let core = steering.steer(req.conn, cores, &mut rng);
                let deliver = req.arrival + mac_delay + transfer.latency(req.size_bytes);
                (deliver, Ev::Enqueue(i, core))
            },
        );
        // Fault plans downgrade wholesale to the per-event oracle: `Fail`
        // truncates a core's pending `Done` mid-flight, which the analytic
        // timeline deliberately does not model (same rule as the ALTOCUMULUS
        // engine and the parallel engine's quiet windows).
        let plane = if self.cfg.faults.is_empty() {
            worker_plane(self.cfg.worker_plane)
        } else {
            WorkerPlane::EventDriven
        };
        let mut world = DFcfsWorld {
            trace,
            cfg: self.cfg.clone(),
            queues: vec![VecDeque::new(); self.cfg.cores],
            in_service: vec![None; self.cfg.cores],
            occ: OccTable::new(self.cfg.cores),
            timeline: match plane {
                // One class lane holding at most one pending `Done` per
                // core.
                WorkerPlane::Elided => Some(Timeline::new(1, self.cfg.cores)),
                WorkerPlane::EventDriven => None,
            },
            result: SystemResult::with_capacity(trace.len()),
        };
        for f in &self.cfg.faults.worker_failures {
            queue.push(f.at, Ev::Fail(f.core));
        }
        match plane {
            WorkerPlane::Elided => run_elided(&mut world, &mut queue, &mut source),
            WorkerPlane::EventDriven => {
                run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
            }
        }
        world.result
    }
}

/// [`run_streamed`] over the virtual queue (main queue ∪ per-core `Done`
/// timeline): the merge discipline is the one proven byte-identical for the
/// ALTOCUMULUS engine (`core/src/system/wp.rs`) — one cached main-queue pop
/// that stays valid because handlers only ever push onto the timeline, and
/// refills exactly when the oracle would (ties refill: reserved arrival
/// seqs precede dynamic ones).
fn run_elided(
    world: &mut DFcfsWorld<'_>,
    queue: &mut EventQueue<Ev>,
    source: &mut impl EventSource<Ev>,
) {
    let mut held: Option<(SimTime, u64, Ev)> = None;
    let mut source_next = source.next_time();
    loop {
        if held.is_none() {
            held = queue.pop_with_seq();
        }
        let local = world.timeline.as_mut().expect("elided run").peek_key();
        let take_local = match (local, &held) {
            (Some(lk), Some((ht, hs, _))) => lk < (*ht, *hs),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let head_time = if take_local {
            local.map(|(t, _)| t)
        } else {
            held.as_ref().map(|&(t, _, _)| t)
        };
        let Some(head_time) = head_time else {
            if source_next.is_none() {
                break;
            }
            source.inject_chunk(queue);
            source_next = source.next_time();
            continue;
        };
        if source_next.is_some_and(|t| head_time >= t) {
            if let Some((t, seq, ev)) = held.take() {
                queue.push_at_seq(t, seq, ev);
            }
            source.inject_chunk(queue);
            source_next = source.next_time();
            continue;
        }
        if take_local {
            let (t, _seq, core) = world
                .timeline
                .as_mut()
                .expect("elided run")
                .pop()
                .expect("checked non-empty");
            world.handle(t, Ev::Done(core), queue);
        } else {
            let (t, _seq, ev) = held.take().expect("checked non-empty");
            world.handle(t, ev, queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::arrival::PoissonProcess;
    use workload::dist::ServiceDistribution;
    use workload::trace::TraceBuilder;

    fn trace(load: f64, cores: usize, n: usize) -> Trace {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(n)
            .connections(256)
            .seed(42)
            .build()
    }

    #[test]
    fn completes_every_request() {
        let t = trace(0.5, 8, 5000);
        let mut sys = DFcfs::new(DFcfsConfig::rss(8));
        let r = sys.run(&t);
        assert_eq!(r.completions.len(), 5000);
    }

    #[test]
    fn latency_at_least_floor() {
        // Even an idle system pays NIC + PCIe + stack + service.
        let t = trace(0.05, 8, 500);
        let mut sys = DFcfs::new(DFcfsConfig::rss(8));
        let r = sys.run(&t);
        let floor = SimDuration::from_ns(30) // mac
            + Transfer::pcie().latency(300)
            + StackModel::erpc().rx(300)
            + SimDuration::from_us(1) // service
            + StackModel::erpc().tx(64);
        assert!(
            r.hist.min() >= floor,
            "min={} floor={}",
            r.hist.min(),
            floor
        );
    }

    #[test]
    fn higher_load_higher_tail() {
        let mut sys = DFcfs::new(DFcfsConfig::rss(8));
        let lo = sys.run(&trace(0.3, 8, 20_000)).p99();
        let hi = sys.run(&trace(0.9, 8, 20_000)).p99();
        assert!(hi > lo, "p99 lo={lo} hi={hi}");
    }

    #[test]
    fn deterministic_runs() {
        let t = trace(0.7, 4, 2000);
        let a = DFcfs::new(DFcfsConfig::rss(4)).run(&t);
        let b = DFcfs::new(DFcfsConfig::rss(4)).run(&t);
        assert_eq!(a.p99(), b.p99());
        assert_eq!(a.completions.len(), b.completions.len());
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn rss_imbalance_hurts_vs_round_robin() {
        // With few connections, RSS hashing concentrates load; per-packet
        // round-robin balances perfectly. Tail must be worse for RSS.
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let rate = PoissonProcess::rate_for_load(0.7, 8, dist.mean());
        let t = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(30_000)
            .connections(6) // fewer connections than cores
            .seed(1)
            .build();
        let mut rss = DFcfs::new(DFcfsConfig::rss(8));
        let mut rr = DFcfs::new(DFcfsConfig {
            steering: Steering::round_robin(),
            ..DFcfsConfig::rss(8)
        });
        let p99_rss = rss.run(&t).p99();
        let p99_rr = rr.run(&t).p99();
        assert!(
            p99_rss > p99_rr,
            "RSS p99 {p99_rss} should exceed RR p99 {p99_rr}"
        );
    }

    #[test]
    fn single_core_fcfs_order() {
        let t = trace(0.5, 1, 100);
        let mut sys = DFcfs::new(DFcfsConfig::rss(1));
        let r = sys.run(&t);
        // FCFS on one queue: completions in arrival (id) order.
        for pair in r.completions.windows(2) {
            assert!(pair[0].id < pair[1].id);
        }
    }

    #[test]
    fn elided_matches_event_driven_oracle() {
        // Dense fixed-service load maximizes exact (time, seq) ties; the
        // two engines must still agree on every completion field.
        for (load, n) in [(0.5, 5000), (0.95, 20_000)] {
            let t = trace(load, 8, n);
            let mut ev_cfg = DFcfsConfig::rss(8);
            ev_cfg.worker_plane = WorkerPlane::EventDriven;
            let elided = DFcfs::new(DFcfsConfig::rss(8)).run(&t);
            let oracle = DFcfs::new(ev_cfg).run(&t);
            assert_eq!(elided.completions, oracle.completions);
            assert_eq!(elided.end_time, oracle.end_time);
            assert_eq!(elided.p99(), oracle.p99());
        }
    }

    #[test]
    fn fault_plan_downgrades_but_stays_identical() {
        // A *non-empty but inert* plan (straggler window past the trace
        // end) must force the EventDriven downgrade, and the downgraded run
        // must still equal the healthy elided run byte for byte.
        use simcore::faults::Straggler;
        let t = trace(0.7, 8, 10_000);
        let healthy = DFcfs::new(DFcfsConfig::rss(8)).run(&t);
        let mut cfg = DFcfsConfig::rss(8);
        cfg.faults.stragglers.push(Straggler {
            first_core: 0,
            last_core: 7,
            from: SimTime::from_us(1_000_000),
            until: SimTime::from_us(1_000_001),
            slowdown: 3.0,
        });
        let inert = DFcfs::new(cfg).run(&t);
        assert_eq!(healthy.completions, inert.completions);
        assert_eq!(healthy.end_time, inert.end_time);
    }

    #[test]
    fn dead_core_loses_its_steered_requests() {
        use simcore::faults::WorkerFailure;
        let t = trace(0.5, 8, 20_000);
        let mut cfg = DFcfsConfig::rss(8);
        cfg.faults.worker_failures.push(WorkerFailure {
            core: 3,
            at: SimTime::from_us(200),
        });
        let a = DFcfs::new(cfg.clone()).run(&t);
        let b = DFcfs::new(cfg).run(&t);
        // No rebalancing: RSS keeps hashing connections onto the dead
        // queue, so dFCFS drops everything steered there after the failure.
        assert!(
            a.completions.len() < t.len(),
            "dFCFS cannot resteer a dead core's traffic"
        );
        assert!(a.completions.len() > t.len() / 2);
        assert_eq!(a.completions, b.completions); // fault runs stay deterministic
    }

    #[test]
    fn straggler_slows_but_loses_nothing() {
        use simcore::faults::Straggler;
        let t = trace(0.5, 8, 20_000);
        let healthy = DFcfs::new(DFcfsConfig::rss(8)).run(&t);
        let mut cfg = DFcfsConfig::rss(8);
        cfg.faults.stragglers.push(Straggler {
            first_core: 0,
            last_core: 7,
            from: SimTime::from_us(100),
            until: SimTime::from_us(600),
            slowdown: 3.0,
        });
        let r = DFcfs::new(cfg).run(&t);
        assert_eq!(r.completions.len(), t.len());
        assert!(
            r.p99() > healthy.p99(),
            "slowed {} vs healthy {}",
            r.p99(),
            healthy.p99()
        );
    }
}
