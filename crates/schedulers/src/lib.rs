//! # schedulers — baseline RPC scheduling systems
//!
//! Queueing-level models of every system Altocumulus is compared against
//! (paper Table I, Fig. 10), built on the `simcore` discrete-event engine:
//!
//! - [`dfcfs`]: IX / plain-RSS d-FCFS (per-core queues, no balancing).
//! - [`stealing`]: ZygOS-style d-FCFS + work stealing (200–400 ns steals).
//! - [`central`]: Shinjuku-style centralized dispatcher with 5 µs preemption
//!   and a ~5 MRPS dispatcher ceiling.
//! - [`jbsq`]: hardware JBSQ(n) NIC schedulers — RPCValet, Nebula, nanoPU.
//! - [`ideal`]: idealized c-FCFS with parametric scheduling overhead and
//!   queue-length instrumentation (drives Figs. 3 and 7).
//! - [`sweep`]: throughput@SLO bisection and load sweeps.
//! - [`catalog`]: Table I as data.
//!
//! All systems implement [`common::RpcSystem`]: feed a `workload::Trace`, get
//! a [`common::SystemResult`].
//!
//! # Examples
//!
//! ```
//! use schedulers::common::RpcSystem;
//! use schedulers::jbsq::{Jbsq, JbsqVariant};
//! use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};
//!
//! let dist = ServiceDistribution::bimodal_paper();
//! let rate = PoissonProcess::rate_for_load(0.4, 16, dist.mean());
//! let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
//!     .requests(5_000)
//!     .seed(1)
//!     .build();
//! let result = Jbsq::new(JbsqVariant::Nebula, 16).run(&trace);
//! assert_eq!(result.completions.len(), 5_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod central;
pub mod common;
pub mod dfcfs;
pub mod ideal;
pub mod jbsq;
pub mod stealing;
pub mod sweep;

pub use central::{CentralConfig, CentralDispatch};
pub use common::{QueuedRequest, RpcSystem, SystemResult};
pub use dfcfs::{DFcfs, DFcfsConfig};
pub use ideal::{CentralQueue, CentralQueueConfig, InstrumentedResult};
pub use jbsq::{Jbsq, JbsqConfig, JbsqVariant};
pub use stealing::{StealingConfig, WorkStealing};
pub use sweep::{
    sweep_loads, sweep_loads_parallel, throughput_at_slo, throughput_at_slo_search, SloSearch,
    SweepPoint,
};
