//! Types shared by all simulated scheduling systems.

use simcore::metrics::{LatencyHistogram, LatencySummary};
use simcore::time::{SimDuration, SimTime};
use workload::request::{Completion, Request};
use workload::trace::Trace;

/// A request sitting in some queue inside a simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Index into the driving trace.
    pub idx: usize,
    /// Remaining handler time (smaller than the original service time once a
    /// preemptive scheduler has run part of it).
    pub remaining: SimDuration,
    /// Instant the request entered the *current* queue.
    pub enqueued: SimTime,
    /// Whether an Altocumulus manager already migrated it (at-most-once).
    pub migrated: bool,
}

impl QueuedRequest {
    /// Creates a fresh entry for trace request `idx`.
    pub fn new(idx: usize, remaining: SimDuration, enqueued: SimTime) -> Self {
        QueuedRequest {
            idx,
            remaining,
            enqueued,
            migrated: false,
        }
    }
}

/// Everything a system run produces: the latency distribution plus
/// per-request completion records (used for migration-effectiveness
/// accounting and prediction-accuracy analysis).
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// Server-side latency distribution (NIC arrival → buffers freed).
    pub hist: LatencyHistogram,
    /// Per-request completion records, in completion order.
    pub completions: Vec<Completion>,
    /// Instant the last request completed.
    pub end_time: SimTime,
}

impl SystemResult {
    /// Creates an empty result sized for `n` requests.
    pub fn with_capacity(n: usize) -> Self {
        SystemResult {
            hist: LatencyHistogram::new(),
            completions: Vec::with_capacity(n),
            end_time: SimTime::ZERO,
        }
    }

    /// Records one completion.
    pub fn record(&mut self, completion: Completion) {
        self.hist.record(completion.latency());
        self.end_time = self.end_time.max(completion.finish);
        self.completions.push(completion);
    }

    /// 99th-percentile latency — the paper's SLO metric.
    pub fn p99(&self) -> SimDuration {
        self.hist.quantile(0.99)
    }

    /// Fraction of requests whose latency exceeded `slo`.
    pub fn violation_ratio(&self, slo: SimDuration) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let violations = self
            .completions
            .iter()
            .filter(|c| c.latency() > slo)
            .count();
        violations as f64 / self.completions.len() as f64
    }

    /// Achieved goodput in requests/second over the run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / secs
    }

    /// Convenience: [`LatencySummary`] of the distribution.
    pub fn summary(&self) -> LatencySummary {
        self.hist.summary()
    }

    /// Per-request latencies indexed by trace position (for effectiveness
    /// accounting). Missing entries (never completed) are `None`.
    pub fn latencies_by_request(&self, trace_len: usize) -> Vec<Option<SimDuration>> {
        let mut out = vec![None; trace_len];
        for c in &self.completions {
            let i = c.id.0 as usize;
            if i < trace_len {
                out[i] = Some(c.latency());
            }
        }
        out
    }
}

/// A simulated end-to-end RPC scheduling system: feed it a trace, get the
/// measured result. All baselines and Altocumulus configurations implement
/// this, so experiments can treat them uniformly.
pub trait RpcSystem {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> String;

    /// Consumes `trace` and returns the measured result.
    fn run(&mut self, trace: &Trace) -> SystemResult;
}

/// Dense per-core occupancy plane — the *hot* state every scheduling
/// decision scans, split from the cold per-core payloads (queues,
/// in-service descriptors, config) exactly like the ALTOCUMULUS engine's
/// group hot/cold planes.
///
/// One `u32` per core, so a whole 16-core domain's occupancy fits in a
/// single cache line; the payload vectors are only touched for the one
/// core a decision lands on. Dead cores are folded into the same word as
/// a sentinel, so liveness checks cost no second array.
///
/// All counts are maintained incrementally by the caller; the table has no
/// opinion about what "occupancy" means (running + local + in-flight for
/// JBSQ, a 0/1 busy flag for the dispatch/stealing models).
#[derive(Debug, Clone)]
pub struct OccTable {
    occ: Vec<u32>,
}

/// Sentinel occupancy of a failed core: never under any bound, never the
/// minimum while any live core exists.
const DEAD: u32 = u32::MAX;

impl OccTable {
    /// A table of `n` idle, live cores.
    pub fn new(n: usize) -> Self {
        OccTable { occ: vec![0; n] }
    }

    /// Current occupancy of a live core.
    pub fn get(&self, core: usize) -> u32 {
        debug_assert_ne!(self.occ[core], DEAD, "occupancy of a dead core");
        self.occ[core]
    }

    /// Adds one to a live core's occupancy.
    pub fn incr(&mut self, core: usize) {
        debug_assert_ne!(self.occ[core], DEAD, "incr on a dead core");
        self.occ[core] += 1;
    }

    /// Removes one from a live core's occupancy.
    pub fn decr(&mut self, core: usize) {
        debug_assert_ne!(self.occ[core], DEAD, "decr on a dead core");
        debug_assert_ne!(self.occ[core], 0, "occupancy underflow");
        self.occ[core] -= 1;
    }

    /// Marks a core fail-stopped: it drops out of every scan from now on.
    pub fn mark_dead(&mut self, core: usize) {
        self.occ[core] = DEAD;
    }

    /// Whether `core` has been marked dead.
    pub fn is_dead(&self, core: usize) -> bool {
        self.occ[core] == DEAD
    }

    /// First core in `range` whose occupancy is minimal among those below
    /// `bound`, or `None` when every live core is at the bound. Ties
    /// resolve to the lowest index — the same answer as
    /// `range.filter(|c| live && occ < bound).min_by_key(occ)` — and the
    /// scan exits early on a zero, so a mostly-idle mesh answers in O(1).
    pub fn argmin_under(&self, range: std::ops::Range<usize>, bound: u32) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for core in range {
            let occ = self.occ[core];
            if occ >= bound {
                continue; // covers DEAD: the sentinel is never under a bound
            }
            if occ == 0 {
                return Some(core);
            }
            if best.is_none_or(|(b, _)| occ < b) {
                best = Some((occ, core));
            }
        }
        best.map(|(_, core)| core)
    }

    /// First idle live core in `range` (occupancy zero), or `None`.
    /// Equivalent to `range.position(is_idle)` at the same early-exit cost.
    pub fn first_idle(&self, range: std::ops::Range<usize>) -> Option<usize> {
        self.argmin_under(range, 1)
    }
}

/// The total on-core cost of executing `req`: stack receive + handler + stack
/// transmit, with a fixed per-request scheduling overhead added.
pub fn on_core_cost(
    rx: SimDuration,
    tx: SimDuration,
    req: &Request,
    sched_overhead: SimDuration,
) -> SimDuration {
    rx + req.service + tx + sched_overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::request::RequestId;

    fn completion(id: u64, arrival_ns: u64, finish_ns: u64) -> Completion {
        Completion {
            id: RequestId(id),
            arrival: SimTime::from_ns(arrival_ns),
            finish: SimTime::from_ns(finish_ns),
            core: 0,
            migrated: false,
        }
    }

    #[test]
    fn result_records_and_summarizes() {
        let mut r = SystemResult::with_capacity(4);
        r.record(completion(0, 0, 100));
        r.record(completion(1, 0, 200));
        r.record(completion(2, 0, 300));
        assert_eq!(r.completions.len(), 3);
        assert_eq!(r.end_time, SimTime::from_ns(300));
        assert_eq!(r.summary().count, 3);
    }

    #[test]
    fn violation_ratio_counts() {
        let mut r = SystemResult::with_capacity(2);
        r.record(completion(0, 0, 100));
        r.record(completion(1, 0, 1000));
        assert_eq!(r.violation_ratio(SimDuration::from_ns(500)), 0.5);
        assert_eq!(r.violation_ratio(SimDuration::from_ns(5000)), 0.0);
    }

    #[test]
    fn throughput_over_span() {
        let mut r = SystemResult::with_capacity(2);
        r.record(completion(0, 0, 500_000)); // 0.5ms
        r.record(completion(1, 0, 1_000_000)); // 1ms
        let rps = r.throughput_rps();
        assert!((rps - 2000.0).abs() < 1.0, "rps={rps}");
    }

    #[test]
    fn latencies_by_request_indexes() {
        let mut r = SystemResult::with_capacity(3);
        r.record(completion(2, 0, 50));
        r.record(completion(0, 10, 100));
        let v = r.latencies_by_request(3);
        assert_eq!(v[0], Some(SimDuration::from_ns(90)));
        assert_eq!(v[1], None);
        assert_eq!(v[2], Some(SimDuration::from_ns(50)));
    }

    #[test]
    fn occ_table_argmin_is_first_minimal_under_bound() {
        let mut t = OccTable::new(4);
        t.incr(0);
        t.incr(0);
        t.incr(1);
        t.incr(2);
        t.incr(3);
        // occ = [2, 1, 1, 1]: first minimal under bound 2 is core 1.
        assert_eq!(t.argmin_under(0..4, 2), Some(1));
        // Bound 1 excludes everything.
        assert_eq!(t.argmin_under(0..4, 1), None);
        // Sub-range scans stay within the range.
        assert_eq!(t.argmin_under(2..4, 2), Some(2));
        t.decr(3);
        assert_eq!(t.first_idle(0..4), Some(3));
    }

    #[test]
    fn occ_table_dead_cores_drop_out() {
        let mut t = OccTable::new(3);
        t.mark_dead(0);
        assert!(t.is_dead(0));
        assert!(!t.is_dead(1));
        // The dead core is never a candidate, whatever the bound.
        assert_eq!(t.first_idle(0..3), Some(1));
        t.incr(1);
        t.incr(2);
        assert_eq!(t.argmin_under(0..3, u32::MAX - 1), Some(1));
        t.mark_dead(1);
        t.mark_dead(2);
        assert_eq!(t.argmin_under(0..3, u32::MAX - 1), None);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = SystemResult::with_capacity(0);
        assert_eq!(r.p99(), SimDuration::ZERO);
        assert_eq!(r.violation_ratio(SimDuration::from_ns(1)), 0.0);
        assert_eq!(r.throughput_rps(), 0.0);
    }
}
