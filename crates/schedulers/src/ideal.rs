//! Idealized c-FCFS with a parametric scheduling overhead, plus queue-length
//! instrumentation.
//!
//! Two paper experiments run directly on this model:
//!
//! - **Fig. 3** sweeps the per-request scheduling overhead (5–360 ns) on a
//!   64-core system and shows the throughput cost at a 5 µs p99 target.
//! - **Fig. 7** records the central queue length seen by each arrival and
//!   correlates it with whether that request eventually violated its SLO —
//!   the characterization from which the threshold model is calibrated.

use crate::common::{QueuedRequest, RpcSystem, SystemResult};
use simcore::event::{run_streamed, EventQueue, StreamInjector, World};
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::request::Completion;
use workload::trace::Trace;

/// Configuration of the idealized central-queue system.
#[derive(Debug, Clone, Copy)]
pub struct CentralQueueConfig {
    /// Number of identical worker cores.
    pub cores: usize,
    /// Fixed scheduling cost added to every request's on-core time.
    pub sched_overhead: SimDuration,
}

impl CentralQueueConfig {
    /// An overhead-free c-FCFS (the Fig. 7 characterization system).
    pub fn ideal(cores: usize) -> Self {
        CentralQueueConfig {
            cores,
            sched_overhead: SimDuration::ZERO,
        }
    }
}

/// Result of an instrumented run: the usual [`SystemResult`] plus the queue
/// length each arrival observed.
#[derive(Debug, Clone)]
pub struct InstrumentedResult {
    /// Standard latency/completion result.
    pub system: SystemResult,
    /// Central-queue length (waiting requests, excluding those in service)
    /// observed by each arrival, indexed by trace position.
    pub arrival_queue_len: Vec<u32>,
}

impl InstrumentedResult {
    /// Buckets arrivals by observed queue length and returns
    /// `(queue_len, violation_ratio, samples)` rows — the data behind
    /// Fig. 7(a–c).
    pub fn violation_ratio_by_queue_len(
        &self,
        trace_len: usize,
        slo: SimDuration,
        bucket: u32,
    ) -> Vec<(u32, f64, u64)> {
        assert!(bucket > 0, "bucket width must be positive");
        let lat = self.system.latencies_by_request(trace_len);
        let mut totals: Vec<(u64, u64)> = Vec::new(); // (violations, count)
        for (idx, &qlen) in self.arrival_queue_len.iter().enumerate() {
            let Some(l) = lat.get(idx).copied().flatten() else {
                continue;
            };
            let b = (qlen / bucket) as usize;
            if b >= totals.len() {
                totals.resize(b + 1, (0, 0));
            }
            totals[b].1 += 1;
            if l > slo {
                totals[b].0 += 1;
            }
        }
        totals
            .iter()
            .enumerate()
            .filter(|(_, &(_, n))| n > 0)
            .map(|(b, &(v, n))| (b as u32 * bucket, v as f64 / n as f64, n))
            .collect()
    }

    /// The queue length observed by the *chronologically first* request that
    /// violated the SLO — the paper's measured threshold `T` (lower bound).
    /// `None` if nothing violated.
    pub fn first_violation_queue_len(&self, trace: &Trace, slo: SimDuration) -> Option<u32> {
        let lat = self.system.latencies_by_request(trace.len());
        // Requests are indexed in arrival order, so the first violating index
        // is the chronologically first violation.
        for (idx, l) in lat.iter().enumerate() {
            if let Some(l) = l {
                if *l > slo {
                    return Some(self.arrival_queue_len[idx]);
                }
            }
        }
        None
    }
}

/// The instrumented, idealized c-FCFS system. See [module docs](self).
#[derive(Debug, Clone)]
pub struct CentralQueue {
    cfg: CentralQueueConfig,
}

impl CentralQueue {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cfg: CentralQueueConfig) -> Self {
        assert!(cfg.cores > 0);
        CentralQueue { cfg }
    }

    /// Runs with queue-length instrumentation.
    pub fn run_instrumented(&mut self, trace: &Trace) -> InstrumentedResult {
        // Streamed arrivals: reserved seqs keep pop order identical to the
        // old upfront pre-push while the queue stays O(in-flight).
        let mut queue = EventQueue::new();
        let base_seq = queue.reserve_seqs(trace.len() as u64);
        let requests = trace.requests();
        let mut source = StreamInjector::new(
            trace.len(),
            base_seq,
            |i: usize| requests[i].arrival,
            |i: usize| (requests[i].arrival, Ev::Arrival(i)),
        );
        let mut world = CqWorld {
            trace,
            cfg: self.cfg,
            central: VecDeque::new(),
            running: vec![None; self.cfg.cores],
            arrival_queue_len: vec![0; trace.len()],
            result: SystemResult::with_capacity(trace.len()),
        };
        run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
        InstrumentedResult {
            system: world.result,
            arrival_queue_len: world.arrival_queue_len,
        }
    }
}

enum Ev {
    Arrival(usize),
    Done(usize),
}

struct CqWorld<'t> {
    trace: &'t Trace,
    cfg: CentralQueueConfig,
    central: VecDeque<QueuedRequest>,
    running: Vec<Option<QueuedRequest>>,
    arrival_queue_len: Vec<u32>,
    result: SystemResult,
}

impl CqWorld<'_> {
    fn start(&mut self, core: usize, qr: QueuedRequest, now: SimTime, q: &mut EventQueue<Ev>) {
        let cost = qr.remaining + self.cfg.sched_overhead;
        self.running[core] = Some(qr);
        q.push(now + cost, Ev::Done(core));
    }
}

impl World for CqWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Arrival(idx) => {
                let req = &self.trace.requests()[idx];
                self.arrival_queue_len[idx] = self.central.len() as u32;
                let qr = QueuedRequest::new(idx, req.service, now);
                if let Some(core) = self.running.iter().position(Option::is_none) {
                    self.start(core, qr, now, q);
                } else {
                    self.central.push_back(qr);
                }
            }
            Ev::Done(core) => {
                let qr = self.running[core].take().expect("Done on idle core");
                let req = &self.trace.requests()[qr.idx];
                self.result.record(Completion {
                    id: req.id,
                    arrival: req.arrival,
                    finish: now,
                    core,
                    migrated: false,
                });
                if let Some(next) = self.central.pop_front() {
                    self.start(core, next, now, q);
                }
            }
        }
    }
}

impl RpcSystem for CentralQueue {
    fn name(&self) -> String {
        format!("c-FCFS({}, oh={})", self.cfg.cores, self.cfg.sched_overhead)
    }

    fn run(&mut self, trace: &Trace) -> SystemResult {
        self.run_instrumented(trace).system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use queueing::erlang::MmK;
    use workload::arrival::PoissonProcess;
    use workload::dist::ServiceDistribution;
    use workload::trace::TraceBuilder;

    fn trace(dist: ServiceDistribution, load: f64, cores: usize, n: usize, seed: u64) -> Trace {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(n)
            .seed(seed)
            .build()
    }

    #[test]
    fn completes_all() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.8,
            16,
            10_000,
            1,
        );
        let r = CentralQueue::new(CentralQueueConfig::ideal(16)).run(&t);
        assert_eq!(r.completions.len(), 10_000);
    }

    #[test]
    fn matches_mmk_mean_wait() {
        // M/M/k sanity: exponential service, ideal c-FCFS — compare the
        // simulated mean sojourn against the closed form.
        let dist = ServiceDistribution::Exponential {
            mean: SimDuration::from_us(1),
        };
        let load = 0.8;
        let k = 8;
        let t = trace(dist, load, k, 400_000, 2);
        let r = CentralQueue::new(CentralQueueConfig::ideal(k)).run(&t);
        let model = MmK::new(k, PoissonProcess::rate_for_load(load, k, dist.mean()), 1e6);
        let sim_mean = r.hist.mean().as_secs_f64();
        let exact = model.mean_sojourn_secs();
        let rel = (sim_mean - exact).abs() / exact;
        assert!(rel < 0.05, "sim={sim_mean} exact={exact} rel={rel}");
    }

    #[test]
    fn overhead_raises_latency() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.9,
            64,
            100_000,
            3,
        );
        let p0 = CentralQueue::new(CentralQueueConfig::ideal(64))
            .run(&t)
            .p99();
        let p360 = CentralQueue::new(CentralQueueConfig {
            cores: 64,
            sched_overhead: SimDuration::from_ns(360),
        })
        .run(&t)
        .p99();
        assert!(p360 > p0, "overhead must raise p99: {p0} vs {p360}");
    }

    #[test]
    fn queue_len_recorded() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.99,
            16,
            50_000,
            4,
        );
        let r = CentralQueue::new(CentralQueueConfig::ideal(16)).run_instrumented(&t);
        assert_eq!(r.arrival_queue_len.len(), 50_000);
        // At 99% load the queue must be observed non-empty sometimes.
        assert!(r.arrival_queue_len.iter().any(|&q| q > 0));
    }

    #[test]
    fn violation_ratio_monotone_ish_in_queue_len() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = trace(dist, 0.99, 16, 300_000, 6);
        let r = CentralQueue::new(CentralQueueConfig::ideal(16)).run_instrumented(&t);
        let slo = SimDuration::from_us(10); // L=10
        let rows = r.violation_ratio_by_queue_len(t.len(), slo, 20);
        assert!(!rows.is_empty());
        // The deepest buckets should violate at (near) certainty while the
        // shallowest do not.
        let first = rows.first().unwrap().1;
        let last = rows.last().unwrap().1;
        assert!(
            last > first,
            "deep queues must violate more: {first} vs {last}"
        );
        assert!(last > 0.9, "deepest bucket ratio {last}");
    }

    #[test]
    fn first_violation_below_naive_bound() {
        // Paper §IV-A: the first violation occurs at moderate occupancy, far
        // below k*L+1.
        // Seed 6 draws a trace whose realized load is slightly above 0.99;
        // near-critical runs are seed-sensitive, so pin a seed that queues.
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = trace(dist, 0.99, 16, 300_000, 6);
        let r = CentralQueue::new(CentralQueueConfig::ideal(16)).run_instrumented(&t);
        let slo = SimDuration::from_us(10);
        let t_first = r
            .first_violation_queue_len(&t, slo)
            .expect("violations exist");
        let naive = queueing::naive_upper_bound(16, 10.0) as u32;
        assert!(
            t_first < naive,
            "first violation at {t_first} >= naive {naive}"
        );
        assert!(t_first > 0);
    }

    #[test]
    fn no_violation_returns_none() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = trace(dist, 0.2, 16, 10_000, 7);
        let r = CentralQueue::new(CentralQueueConfig::ideal(16)).run_instrumented(&t);
        assert_eq!(
            r.first_violation_queue_len(&t, SimDuration::from_us(100)),
            None
        );
    }
}
