//! d-FCFS + work stealing (ZygOS-style).
//!
//! Extends the RSS-steered per-core model with ZygOS's balancing (paper
//! §II-D): an idle core steals pending requests from another core's queue.
//! The two published costs drive the model:
//!
//! 1. victim selection is simple/random, so many steals move requests that
//!    didn't need to move (ZygOS migrates ~60% of requests at load);
//! 2. each successful steal costs 2–3 cache misses (200–400 ns), far too
//!    slow for sub-µs RPCs.
//!
//! There is no preemption: a long request in service blocks its core, which
//! is what Shinjuku (and Altocumulus) fix.

use crate::common::{on_core_cost, OccTable, QueuedRequest, RpcSystem, SystemResult};
use interconnect::offchip::MemoryModel;
use rand::rngs::StdRng;
use rand::Rng;
use rpcstack::nic::{NicModel, Steering, Transfer};
use rpcstack::stack::StackModel;
use simcore::event::{run_streamed, EventQueue, StreamInjector, World};
use simcore::rng::{stream_rng, streams, BatchedRng};
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::request::Completion;
use workload::trace::Trace;

/// Configuration for the work-stealing system.
#[derive(Debug, Clone)]
pub struct StealingConfig {
    /// Number of worker cores.
    pub cores: usize,
    /// RPC stack processed on each core.
    pub stack: StackModel,
    /// NIC→core transfer mechanism.
    pub transfer: Transfer,
    /// On-NIC processing.
    pub nic: NicModel,
    /// Steering of fresh arrivals (RSS).
    pub steering: Steering,
    /// Cost of one successful steal (2–3 cache misses; default 300 ns).
    pub steal_cost: SimDuration,
    /// Cost of probing one remote queue that turns out to be empty.
    pub probe_cost: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl StealingConfig {
    /// ZygOS-like defaults on a commodity PCIe RSS NIC.
    pub fn zygos(cores: usize) -> Self {
        let mem = MemoryModel::default();
        StealingConfig {
            cores,
            stack: StackModel::erpc(),
            transfer: Transfer::pcie(),
            nic: NicModel::default(),
            steering: Steering::rss(),
            steal_cost: mem.steal_cost(3),
            probe_cost: mem.llc,
            seed: 0,
        }
    }
}

/// The d-FCFS + work-stealing system. See [module docs](self).
#[derive(Debug, Clone)]
pub struct WorkStealing {
    cfg: StealingConfig,
    /// Number of requests that executed on a core other than their steered
    /// one (reported as migration traffic, cf. ZygOS's ~60%).
    stolen: u64,
}

impl WorkStealing {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cfg: StealingConfig) -> Self {
        assert!(cfg.cores > 0);
        WorkStealing { cfg, stolen: 0 }
    }

    /// Fraction of requests stolen in the most recent run.
    pub fn stolen_fraction(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.stolen as f64 / total as f64
        }
    }

    /// Raw count of stolen requests in the most recent run.
    pub fn stolen(&self) -> u64 {
        self.stolen
    }
}

enum Ev {
    Enqueue(usize, usize),
    Done(usize),
}

struct StealWorld<'t> {
    trace: &'t Trace,
    cfg: StealingConfig,
    queues: Vec<VecDeque<QueuedRequest>>,
    in_service: Vec<Option<QueuedRequest>>,
    /// Hot plane: 0/1 busy flags mirrored from `in_service`, read by the
    /// arrival path's idle-core scan.
    occ: OccTable,
    /// Victim-selection draws come off the SCHEDULER stream in prefetched
    /// blocks; [`BatchedRng`] is stream-identical to the plain generator.
    rng: BatchedRng<StdRng>,
    stolen: u64,
    result: SystemResult,
}

impl StealWorld<'_> {
    fn start(
        &mut self,
        core: usize,
        qr: QueuedRequest,
        now: SimTime,
        extra: SimDuration,
        q: &mut EventQueue<Ev>,
    ) {
        let req = &self.trace.requests()[qr.idx];
        let cost = on_core_cost(
            self.cfg.stack.rx(req.size_bytes),
            self.cfg.stack.tx(64),
            req,
            SimDuration::ZERO,
        ) + extra;
        self.in_service[core] = Some(qr);
        self.occ.incr(core);
        q.push(now + cost, Ev::Done(core));
    }

    /// An idle `core` looks for work: its own queue first, then a random
    /// victim, then a scan. Returns the chosen request plus the overhead the
    /// core paid to find it.
    fn find_work(&mut self, core: usize) -> Option<(QueuedRequest, SimDuration, bool)> {
        if let Some(qr) = self.queues[core].pop_front() {
            return Some((qr, SimDuration::ZERO, false));
        }
        let n = self.cfg.cores;
        if n == 1 {
            return None;
        }
        let mut overhead = SimDuration::ZERO;
        // Random first victim, as ZygOS does.
        let first = {
            let step = self.rng.random_range(1..n);
            (core + step) % n
        };
        if let Some(qr) = self.queues[first].pop_front() {
            return Some((qr, overhead + self.cfg.steal_cost, true));
        }
        overhead += self.cfg.probe_cost;
        // Fall back to scanning the remaining cores.
        for off in 1..n {
            let victim = (first + off) % n;
            if victim == core {
                continue;
            }
            if let Some(qr) = self.queues[victim].pop_front() {
                return Some((qr, overhead + self.cfg.steal_cost, true));
            }
            overhead += self.cfg.probe_cost;
        }
        None
    }
}

impl World for StealWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Enqueue(idx, core) => {
                let req = &self.trace.requests()[idx];
                let qr = QueuedRequest::new(idx, req.service, now);
                if self.in_service[core].is_none() {
                    self.start(core, qr, now, SimDuration::ZERO, q);
                } else if let Some(idle) = self.occ.first_idle(0..self.cfg.cores) {
                    debug_assert!(self.in_service[idle].is_none());
                    // An idle core grabs it immediately, paying the steal.
                    self.stolen += 1;
                    self.start(idle, qr, now, self.cfg.steal_cost, q);
                } else {
                    self.queues[core].push_back(qr);
                }
            }
            Ev::Done(core) => {
                let qr = self.in_service[core].take().expect("Done on idle core");
                self.occ.decr(core);
                let req = &self.trace.requests()[qr.idx];
                self.result.record(Completion {
                    id: req.id,
                    arrival: req.arrival,
                    finish: now,
                    core,
                    migrated: qr.migrated,
                });
                if let Some((mut next, overhead, was_steal)) = self.find_work(core) {
                    if was_steal {
                        self.stolen += 1;
                        next.migrated = true;
                    }
                    self.start(core, next, now, overhead, q);
                }
            }
        }
    }
}

impl RpcSystem for WorkStealing {
    fn name(&self) -> String {
        format!("ZygOS({})", self.cfg.cores)
    }

    fn run(&mut self, trace: &Trace) -> SystemResult {
        let mut steering = self.cfg.steering.clone();
        let mut nic_rng: StdRng = stream_rng(self.cfg.seed, streams::NIC);
        // Streamed arrivals: reserved seqs keep pop order and steering RNG
        // draws identical to the old upfront pre-push.
        let mut queue = EventQueue::new();
        let base_seq = queue.reserve_seqs(trace.len() as u64);
        let requests = trace.requests();
        let mac_delay = self.cfg.nic.mac_delay;
        let transfer = self.cfg.transfer;
        let cores = self.cfg.cores;
        let mut source = StreamInjector::new(
            trace.len(),
            base_seq,
            |i: usize| requests[i].arrival + mac_delay,
            |i: usize| {
                let req = &requests[i];
                let core = steering.steer(req.conn, cores, &mut nic_rng);
                let deliver = req.arrival + mac_delay + transfer.latency(req.size_bytes);
                (deliver, Ev::Enqueue(i, core))
            },
        );
        let mut world = StealWorld {
            trace,
            cfg: self.cfg.clone(),
            queues: vec![VecDeque::new(); self.cfg.cores],
            in_service: vec![None; self.cfg.cores],
            occ: OccTable::new(self.cfg.cores),
            rng: BatchedRng::new(stream_rng(self.cfg.seed, streams::SCHEDULER)),
            stolen: 0,
            result: SystemResult::with_capacity(trace.len()),
        };
        run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
        self.stolen = world.stolen;
        world.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfcfs::{DFcfs, DFcfsConfig};
    use workload::arrival::PoissonProcess;
    use workload::dist::ServiceDistribution;
    use workload::trace::TraceBuilder;

    fn trace(dist: ServiceDistribution, load: f64, cores: usize, n: usize, conns: u32) -> Trace {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(n)
            .connections(conns)
            .seed(11)
            .build()
    }

    #[test]
    fn completes_all() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.6,
            8,
            5000,
            64,
        );
        let mut sys = WorkStealing::new(StealingConfig::zygos(8));
        let r = sys.run(&t);
        assert_eq!(r.completions.len(), 5000);
    }

    #[test]
    fn stealing_beats_plain_dfcfs_under_imbalance() {
        // Few connections => RSS imbalance; stealing should rescue it.
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.7,
            8,
            30_000,
            6,
        );
        let p99_steal = WorkStealing::new(StealingConfig::zygos(8)).run(&t).p99();
        let p99_plain = DFcfs::new(DFcfsConfig::rss(8)).run(&t).p99();
        assert!(
            p99_steal < p99_plain,
            "stealing {p99_steal} should beat d-FCFS {p99_plain}"
        );
    }

    #[test]
    fn steals_happen_and_are_counted() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.8,
            8,
            20_000,
            6,
        );
        let mut sys = WorkStealing::new(StealingConfig::zygos(8));
        sys.run(&t);
        assert!(
            sys.stolen() > 0,
            "under imbalance some requests must be stolen"
        );
        // ZygOS's published number is ~60%; ours should at least be a
        // substantial fraction under this imbalance.
        assert!(sys.stolen_fraction(20_000) > 0.1);
    }

    #[test]
    fn long_requests_block_without_preemption() {
        // With the paper's bimodal mix, a 500us request in service blocks;
        // p99 should exceed SLO 300us well below saturation... but stealing
        // keeps *queued* shorts safe, so p99 stays below d-FCFS's.
        let t = trace(ServiceDistribution::bimodal_paper(), 0.6, 8, 40_000, 64);
        let steal = WorkStealing::new(StealingConfig::zygos(8)).run(&t);
        let plain = DFcfs::new(DFcfsConfig::rss(8)).run(&t);
        assert!(steal.p99() <= plain.p99());
        // Max latency still reflects head-of-line blocking (> 500us).
        assert!(steal.hist.max() > SimDuration::from_us(500));
    }

    #[test]
    fn deterministic() {
        let t = trace(ServiceDistribution::bimodal_paper(), 0.5, 4, 5000, 16);
        let a = WorkStealing::new(StealingConfig::zygos(4)).run(&t);
        let b = WorkStealing::new(StealingConfig::zygos(4)).run(&t);
        assert_eq!(a.p99(), b.p99());
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn single_core_never_steals() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.5,
            1,
            1000,
            4,
        );
        let mut sys = WorkStealing::new(StealingConfig::zygos(1));
        sys.run(&t);
        assert_eq!(sys.stolen(), 0);
    }
}
