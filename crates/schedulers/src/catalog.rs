//! Table I of the paper: the qualitative comparison of scheduler designs.
//!
//! Each simulated system in this workspace is catalogued with the paper's
//! classification of its scheme, manager, communication mechanism and
//! scalability bottleneck, so the `table1_catalog` experiment binary can
//! reprint the table from the same source of truth that configures the
//! models.

/// Where and how scheduling decisions are made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Distributed FCFS (per-core queues).
    DFcfs,
    /// Distributed FCFS plus work stealing.
    DFcfsStealing,
    /// Centralized FCFS.
    CFcfs,
    /// Altocumulus: global d-FCFS across groups, local c-FCFS within.
    GlobalDLocalC,
}

impl Scheme {
    /// Paper nomenclature.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::DFcfs => "d-FCFS",
            Scheme::DFcfsStealing => "d-FCFS with work stealing",
            Scheme::CFcfs => "c-FCFS",
            Scheme::GlobalDLocalC => "global d-FCFS, local c-FCFS",
        }
    }
}

/// Who runs the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manager {
    /// Software, in the kernel (IX, ZygOS, Shinjuku).
    KernelSoftware,
    /// Hardware RSS on the NIC.
    NicRss,
    /// Hardware scheduler on the NIC (JBSQ).
    NicHardware,
    /// Altocumulus: SLO-aware user-level software over hardware primitives.
    SloAwareUserLevel,
}

impl Manager {
    /// Paper nomenclature.
    pub fn label(self) -> &'static str {
        match self {
            Manager::KernelSoftware => "s/w, kernel-based",
            Manager::NicRss => "h/w, NIC RSS",
            Manager::NicHardware => "h/w, NIC-based",
            Manager::SloAwareUserLevel => "h/w, SLO-aware user-level",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// System name.
    pub system: &'static str,
    /// Scalability bottleneck (paper's wording).
    pub bottleneck: &'static str,
    /// Scheduling scheme.
    pub scheme: Scheme,
    /// Scheduling manager.
    pub manager: Manager,
    /// Communication mechanism.
    pub communication: &'static str,
}

/// The full Table I, in paper order.
pub fn table1() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            system: "ZygOS",
            bottleneck: "high s/w stealing rate",
            scheme: Scheme::DFcfsStealing,
            manager: Manager::KernelSoftware,
            communication: "PCIe",
        },
        CatalogEntry {
            system: "IX",
            bottleneck: "imbalance",
            scheme: Scheme::DFcfs,
            manager: Manager::KernelSoftware,
            communication: "PCIe",
        },
        CatalogEntry {
            system: "Shinjuku",
            bottleneck: "imbalance, dispatcher throughput",
            scheme: Scheme::CFcfs,
            manager: Manager::KernelSoftware,
            communication: "PCIe",
        },
        CatalogEntry {
            system: "eRSS",
            bottleneck: "imbalance, interconnects",
            scheme: Scheme::DFcfs,
            manager: Manager::NicRss,
            communication: "shared caches",
        },
        CatalogEntry {
            system: "nanoPU",
            bottleneck: "register file size, NoC",
            scheme: Scheme::CFcfs,
            manager: Manager::NicHardware,
            communication: "register files",
        },
        CatalogEntry {
            system: "RPCValet",
            bottleneck: "limited cohe. domain size, mem. b/w",
            scheme: Scheme::CFcfs,
            manager: Manager::NicHardware,
            communication: "shared caches",
        },
        CatalogEntry {
            system: "Nebula",
            bottleneck: "limited coherence domain size",
            scheme: Scheme::CFcfs,
            manager: Manager::NicHardware,
            communication: "migration channel & shared caches",
        },
        CatalogEntry {
            system: "Altocumulus",
            bottleneck: "mis-prediction penalty, NoC",
            scheme: Scheme::GlobalDLocalC,
            manager: Manager::SloAwareUserLevel,
            communication: "shared caches",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_eight_systems() {
        let t = table1();
        assert_eq!(t.len(), 8);
        let names: Vec<&str> = t.iter().map(|e| e.system).collect();
        assert!(names.contains(&"Altocumulus"));
        assert!(names.contains(&"Nebula"));
        assert!(names.contains(&"ZygOS"));
    }

    #[test]
    fn altocumulus_classification() {
        let t = table1();
        let ac = t.iter().find(|e| e.system == "Altocumulus").unwrap();
        assert_eq!(ac.scheme, Scheme::GlobalDLocalC);
        assert_eq!(ac.manager, Manager::SloAwareUserLevel);
        assert_eq!(ac.scheme.label(), "global d-FCFS, local c-FCFS");
    }

    #[test]
    fn labels_nonempty() {
        for e in table1() {
            assert!(!e.scheme.label().is_empty());
            assert!(!e.manager.label().is_empty());
            assert!(!e.bottleneck.is_empty());
        }
    }
}
