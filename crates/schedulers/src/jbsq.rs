//! NIC-driven c-FCFS with Join-Bounded-Shortest-Queue (JBSQ) hardware
//! schedulers: RPCValet, Nebula and nanoPU (paper §II-D, §VII-A).
//!
//! The NIC holds one central hardware queue and pushes the head to any core
//! whose local queue has fewer than `bound` entries. The three systems differ
//! in the NIC→core transfer mechanism and in whether cores can preempt:
//!
//! | system   | bound | transfer                    | preemption |
//! |----------|-------|-----------------------------|------------|
//! | RPCValet | 1     | cache-coherent (shared LLC) | no         |
//! | Nebula   | 2     | cache-coherent (L1-speed)   | no         |
//! | nanoPU   | 2     | register file               | piggybacked |
//!
//! Nebula's lack of long-request awareness — JBSQ decides only on queue
//! *counts* — is exactly what produces its 15.8× tail blow-up on dispersed
//! service times (Fig. 10), which this model reproduces.
//!
//! # Why JBSQ keeps the per-event worker plane
//!
//! d-FCFS and the ALTOCUMULUS engine elide worker-plane events onto
//! analytic [`Timeline`](simcore::timeline::Timeline) lanes because each
//! producer's schedule is near-chronological and locally determined. JBSQ's
//! semantics break both properties: every `SliceDone` consults the *central*
//! hardware queue and may push a `Deliver` to any core whose bound has
//! room, so a core's incoming-event stream is produced by all cores at
//! once (no lane ordering), and nanoPU's piggybacked preemption truncates
//! in-service slices mid-flight (`CoreFree`), which the timeline
//! deliberately does not model — the same reason fault plans downgrade the
//! other engines. The `nebula_jbsq` hotpath budget tracks that this
//! per-event path stays within 5% of its seed cost.

use crate::common::{OccTable, QueuedRequest, RpcSystem, SystemResult};
use rpcstack::nic::{NicModel, Transfer};
use rpcstack::stack::StackModel;
use simcore::event::{run_streamed, EventQueue, StreamInjector, World};
use simcore::faults::FaultPlan;
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::request::Completion;
use workload::trace::Trace;

/// Which published system the JBSQ model instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JbsqVariant {
    /// RPCValet: NI-driven single-queue dispatch over shared caches.
    RpcValet,
    /// Nebula: JBSQ(2) with L1-speed NIC-core integration.
    Nebula,
    /// nanoPU: JBSQ(2) into the core's register file, with a piggybacked
    /// preemption mechanism that bounds head-of-line blocking.
    NanoPu,
}

impl JbsqVariant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JbsqVariant::RpcValet => "RPCValet",
            JbsqVariant::Nebula => "Nebula",
            JbsqVariant::NanoPu => "nanoPU",
        }
    }
}

/// Configuration of the JBSQ hardware-scheduler model.
#[derive(Debug, Clone)]
pub struct JbsqConfig {
    /// Number of worker cores (the scheduler itself is NIC hardware and
    /// consumes no core).
    pub cores: usize,
    /// Local queue bound `n` of JBSQ(n), counting the in-service request.
    pub bound: usize,
    /// Coherence-domain size: the JBSQ central queue can only span this many
    /// cores (Table I: "limited coherence domain size"). Larger systems are
    /// split into independent domains with RSS steering across them and no
    /// rebalancing between them.
    pub domain_size: usize,
    /// RPC stack cost (hardware-terminated for all three systems).
    pub stack: StackModel,
    /// NIC→core transfer mechanism.
    pub transfer: Transfer,
    /// On-NIC processing.
    pub nic: NicModel,
    /// Preemption quantum (nanoPU only).
    pub quantum: Option<SimDuration>,
    /// Per-preemption overhead.
    pub preempt_overhead: SimDuration,
    /// Injected faults. JBSQ is partially resilient by construction — the
    /// central queue just stops pushing to a dead core — but whatever the
    /// dead core already held (running, local queue, in-flight pushes) is
    /// lost. The default empty plan reproduces healthy runs byte-for-byte.
    pub faults: FaultPlan,
}

impl JbsqConfig {
    /// Instantiates the published configuration of `variant`. The
    /// cache-coherent systems (RPCValet, Nebula) pool at most 32 cores per
    /// coherence domain; nanoPU's NoC-routed register-file path spans the
    /// whole chip.
    pub fn of(variant: JbsqVariant, cores: usize) -> Self {
        let base = JbsqConfig {
            cores,
            bound: 2,
            domain_size: cores.min(32),
            stack: StackModel::nano_rpc(),
            transfer: Transfer::coherent(),
            nic: NicModel::default(),
            quantum: None,
            preempt_overhead: SimDuration::from_ns(100),
            faults: FaultPlan::default(),
        };
        match variant {
            JbsqVariant::RpcValet => JbsqConfig { bound: 1, ..base },
            JbsqVariant::Nebula => base,
            JbsqVariant::NanoPu => JbsqConfig {
                transfer: Transfer::register_file(),
                quantum: Some(SimDuration::from_us(5)),
                domain_size: cores,
                ..base
            },
        }
    }
}

/// The JBSQ NIC-scheduler system. See [module docs](self).
#[derive(Debug, Clone)]
pub struct Jbsq {
    cfg: JbsqConfig,
    variant: JbsqVariant,
}

impl Jbsq {
    /// Creates a published variant on `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(variant: JbsqVariant, cores: usize) -> Self {
        assert!(cores > 0);
        Jbsq {
            cfg: JbsqConfig::of(variant, cores),
            variant,
        }
    }

    /// Creates a custom configuration (for ablations).
    pub fn with_config(variant: JbsqVariant, cfg: JbsqConfig) -> Self {
        assert!(cfg.cores > 0);
        assert!(cfg.bound > 0, "JBSQ bound must be positive");
        cfg.faults.validate();
        for f in &cfg.faults.worker_failures {
            assert!(f.core < cfg.cores, "failure targets a nonexistent core");
        }
        Jbsq { cfg, variant }
    }
}

enum Ev {
    /// Request reached domain `d`'s central hardware queue.
    NicEnqueue(usize, usize),
    /// Pushed request lands in core `c`'s local queue.
    Deliver(usize, QueuedRequest),
    /// Core `c` finished a slice.
    SliceDone(usize),
    /// Core `c` finished its preemption overhead.
    CoreFree(usize),
    /// Fault plan: core `c` fails permanently. Never pushed by healthy runs.
    Fail(usize),
}

struct JbsqWorld<'t> {
    trace: &'t Trace,
    cfg: JbsqConfig,
    /// One central hardware queue per coherence domain.
    nic_queue: Vec<VecDeque<QueuedRequest>>,
    /// In-service request per core (None = idle).
    running: Vec<Option<QueuedRequest>>,
    /// Waiting entries per core, bounded by `bound` together with the
    /// running/in-flight slot count.
    local: Vec<VecDeque<QueuedRequest>>,
    /// Requests pushed but not yet delivered (occupy a slot).
    in_flight: Vec<usize>,
    /// Core is paying preemption overhead until cleared.
    stalled: Vec<bool>,
    /// Hot plane: per-core slot occupancy (running + local + in-flight)
    /// maintained incrementally, with dead cores folded in as the
    /// sentinel. The NIC's shortest-bounded-queue scan reads only this.
    occ: OccTable,
    result: SystemResult,
}

impl JbsqWorld<'_> {
    /// Recomputed occupancy of a live core — the oracle the incremental
    /// [`OccTable`] is checked against in debug builds.
    #[cfg(debug_assertions)]
    fn occupancy(&self, core: usize) -> usize {
        self.running[core].map_or(0, |_| 1) + self.local[core].len() + self.in_flight[core]
    }

    fn domain_of(&self, core: usize) -> usize {
        core / self.cfg.domain_size
    }

    fn domain_cores(&self, domain: usize) -> std::ops::Range<usize> {
        let lo = domain * self.cfg.domain_size;
        lo..(lo + self.cfg.domain_size).min(self.cfg.cores)
    }

    /// NIC hardware scheduler: push heads to cores of `domain` with spare
    /// slots.
    fn try_push(&mut self, domain: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        while !self.nic_queue[domain].is_empty() {
            // Shortest bounded queue first, within the coherence domain.
            // First-minimal ties match the old filter + min_by_key scan
            // over recomputed occupancies.
            let Some(core) = self
                .occ
                .argmin_under(self.domain_cores(domain), self.cfg.bound as u32)
            else {
                return;
            };
            #[cfg(debug_assertions)]
            debug_assert!(self
                .domain_cores(domain)
                .filter(|&c| !self.occ.is_dead(c) && self.occupancy(c) < self.cfg.bound)
                .min_by_key(|&c| self.occupancy(c))
                .is_some_and(|c| c == core));
            let qr = self.nic_queue[domain]
                .pop_front()
                .expect("non-empty NIC queue");
            let req = &self.trace.requests()[qr.idx];
            self.in_flight[core] += 1;
            self.occ.incr(core);
            let xfer = self.cfg.transfer.latency(req.size_bytes);
            q.push(now + xfer, Ev::Deliver(core, qr));
        }
    }

    fn start_if_idle(&mut self, core: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.running[core].is_some() || self.stalled[core] {
            return;
        }
        let Some(qr) = self.local[core].pop_front() else {
            return;
        };
        let slice = match self.cfg.quantum {
            Some(qt) => qr.remaining.min(qt),
            None => qr.remaining,
        };
        // A straggling core runs its slice slower (wall time inflated) but
        // accomplishes the same nominal work; identity on healthy runs.
        let wall = self.cfg.faults.inflate(core, now, slice);
        self.running[core] = Some(qr);
        q.push(now + wall, Ev::SliceDone(core));
    }
}

impl World for JbsqWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::NicEnqueue(idx, domain) => {
                let req = &self.trace.requests()[idx];
                let total = self.cfg.stack.rx(req.size_bytes) + req.service + self.cfg.stack.tx(64);
                self.nic_queue[domain].push_back(QueuedRequest::new(idx, total, now));
                self.try_push(domain, now, q);
            }
            Ev::Deliver(core, qr) => {
                self.in_flight[core] -= 1;
                if self.occ.is_dead(core) {
                    // Pushed before the core died; the descriptor is lost.
                    return;
                }
                // Live landing is occupancy-neutral: in-flight becomes local.
                self.local[core].push_back(qr);
                self.start_if_idle(core, now, q);
            }
            Ev::SliceDone(core) => {
                if self.occ.is_dead(core) {
                    // Stale slice from before the core's death.
                    return;
                }
                let domain = self.domain_of(core);
                let mut qr = self.running[core].take().expect("slice on idle core");
                // Either way the request leaves this core's bound: done, or
                // requeued at the NIC's central queue.
                self.occ.decr(core);
                let ran = match self.cfg.quantum {
                    Some(qt) => qr.remaining.min(qt),
                    None => qr.remaining,
                };
                qr.remaining = qr.remaining.saturating_sub(ran);
                if qr.remaining.is_zero() {
                    let req = &self.trace.requests()[qr.idx];
                    self.result.record(Completion {
                        id: req.id,
                        arrival: req.arrival,
                        finish: now,
                        core,
                        migrated: false,
                    });
                    self.start_if_idle(core, now, q);
                    self.try_push(domain, now, q);
                } else {
                    // nanoPU preemption: requeue at the NIC, pay overhead.
                    self.nic_queue[domain].push_back(qr);
                    self.stalled[core] = true;
                    q.push(now + self.cfg.preempt_overhead, Ev::CoreFree(core));
                    self.try_push(domain, now, q);
                }
            }
            Ev::CoreFree(core) => {
                if self.occ.is_dead(core) {
                    return;
                }
                self.stalled[core] = false;
                self.start_if_idle(core, now, q);
                self.try_push(self.domain_of(core), now, q);
            }
            Ev::Fail(core) => {
                // Fail-stop: lose the running request and the local queue;
                // the central queue re-routes around the dead core from now
                // on (JBSQ's built-in partial resilience).
                self.occ.mark_dead(core);
                self.running[core] = None;
                self.local[core].clear();
                self.try_push(self.domain_of(core), now, q);
            }
        }
    }
}

impl RpcSystem for Jbsq {
    fn name(&self) -> String {
        format!("{}({})", self.variant.name(), self.cfg.cores)
    }

    fn run(&mut self, trace: &Trace) -> SystemResult {
        let n = self.cfg.cores;
        let domains = n.div_ceil(self.cfg.domain_size);
        let mut steering = rpcstack::nic::Steering::rss();
        let mut rng = simcore::rng::stream_rng(0, simcore::rng::streams::NIC);
        // Streamed arrivals: reserved seqs keep pop order and steering RNG
        // draws identical to the old upfront pre-push.
        let mut queue = EventQueue::new();
        let base_seq = queue.reserve_seqs(trace.len() as u64);
        let requests = trace.requests();
        let mac_delay = self.cfg.nic.mac_delay;
        let mut source = StreamInjector::new(
            trace.len(),
            base_seq,
            |i: usize| requests[i].arrival + mac_delay,
            |i: usize| {
                let req = &requests[i];
                let domain = if domains == 1 {
                    0
                } else {
                    steering.steer(req.conn, domains, &mut rng)
                };
                (req.arrival + mac_delay, Ev::NicEnqueue(i, domain))
            },
        );
        let mut world = JbsqWorld {
            trace,
            cfg: self.cfg.clone(),
            nic_queue: vec![VecDeque::new(); domains],
            running: vec![None; n],
            local: vec![VecDeque::new(); n],
            in_flight: vec![0; n],
            stalled: vec![false; n],
            occ: OccTable::new(n),
            result: SystemResult::with_capacity(trace.len()),
        };
        for f in &self.cfg.faults.worker_failures {
            queue.push(f.at, Ev::Fail(f.core));
        }
        run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
        world.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::arrival::PoissonProcess;
    use workload::dist::ServiceDistribution;
    use workload::trace::TraceBuilder;

    fn trace(dist: ServiceDistribution, load: f64, cores: usize, n: usize) -> Trace {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(n)
            .connections(64)
            .seed(31)
            .build()
    }

    #[test]
    fn completes_all_variants() {
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.6,
            8,
            5000,
        );
        for v in [
            JbsqVariant::RpcValet,
            JbsqVariant::Nebula,
            JbsqVariant::NanoPu,
        ] {
            let r = Jbsq::new(v, 8).run(&t);
            assert_eq!(r.completions.len(), 5000, "{}", v.name());
        }
    }

    #[test]
    fn local_queues_respect_bound() {
        // Indirect check: with fixed service and bound 2, no request should
        // ever wait behind more than (bound-1) local entries beyond the NIC
        // queue — latency under light load is tightly clustered.
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.2,
            8,
            5000,
        );
        let r = Jbsq::new(JbsqVariant::Nebula, 8).run(&t);
        // At 20% load nearly everything should finish within ~2 service times
        // + stack + transfer.
        assert!(r.p99() < SimDuration::from_us(3), "p99={}", r.p99());
    }

    #[test]
    fn nebula_blows_up_on_bimodal_tail() {
        // The paper's headline observation: JBSQ without preemption suffers
        // on dispersed service times, nanoPU's preemption fixes it.
        let t = trace(ServiceDistribution::bimodal_paper(), 0.85, 16, 80_000);
        let nebula = Jbsq::new(JbsqVariant::Nebula, 16).run(&t);
        let nanopu = Jbsq::new(JbsqVariant::NanoPu, 16).run(&t);
        // 0.5% longs violate a 300us SLO by construction; Nebula additionally
        // strands shorts behind them while nanoPU's preemption rescues them,
        // so Nebula's violation ratio and p99 are both distinctly worse.
        let slo = SimDuration::from_us(300);
        let nb = nebula.violation_ratio(slo);
        let np = nanopu.violation_ratio(slo);
        assert!(
            nb > np * 1.5,
            "Nebula violations {nb} should far exceed nanoPU {np}"
        );
        assert!(
            np < 0.03,
            "nanoPU violations {np} should be near the 0.5% floor"
        );
        assert!(
            nebula.p99() > nanopu.p99(),
            "Nebula p99 {} should exceed nanoPU p99 {}",
            nebula.p99(),
            nanopu.p99()
        );
    }

    #[test]
    fn nebula_fine_on_uniform_service() {
        // Without dispersion, JBSQ(2) is near-optimal.
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.9,
            16,
            50_000,
        );
        let r = Jbsq::new(JbsqVariant::Nebula, 16).run(&t);
        assert!(r.p99() < SimDuration::from_us(20), "p99={}", r.p99());
    }

    #[test]
    fn rpcvalet_bound_one_idles_more() {
        // JBSQ(1) cannot hide transfer latency; JBSQ(2) prefetches one
        // request, so at high load Nebula sustains lower latency.
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_ns(500)),
            0.9,
            16,
            50_000,
        );
        let valet = Jbsq::new(JbsqVariant::RpcValet, 16).run(&t);
        let nebula = Jbsq::new(JbsqVariant::Nebula, 16).run(&t);
        assert!(
            nebula.p99() <= valet.p99(),
            "Nebula {} should not lose to RPCValet {}",
            nebula.p99(),
            valet.p99()
        );
    }

    #[test]
    fn deterministic() {
        let t = trace(ServiceDistribution::bimodal_paper(), 0.5, 8, 5000);
        let a = Jbsq::new(JbsqVariant::NanoPu, 8).run(&t);
        let b = Jbsq::new(JbsqVariant::NanoPu, 8).run(&t);
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    fn variant_names() {
        assert_eq!(Jbsq::new(JbsqVariant::Nebula, 4).name(), "Nebula(4)");
        assert_eq!(JbsqVariant::NanoPu.name(), "nanoPU");
    }

    #[test]
    fn routes_around_a_dead_core() {
        use simcore::faults::WorkerFailure;
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.6,
            8,
            20_000,
        );
        let mut cfg = JbsqConfig::of(JbsqVariant::Nebula, 8);
        cfg.faults.worker_failures.push(WorkerFailure {
            core: 3,
            at: SimTime::from_us(200),
        });
        let a = Jbsq::with_config(JbsqVariant::Nebula, cfg.clone()).run(&t);
        let b = Jbsq::with_config(JbsqVariant::Nebula, cfg).run(&t);
        // The central queue simply stops feeding the dead core, so at most
        // its held work (bound + in-flight) is lost — unlike dFCFS, which
        // keeps steering traffic at the corpse.
        let lost = t.len() - a.completions.len();
        assert!(
            lost <= 8,
            "JBSQ loses only the dead core's held work: {lost}"
        );
        assert_eq!(a.completions, b.completions); // fault runs stay deterministic
    }

    #[test]
    fn straggler_inflates_tail_but_completes() {
        use simcore::faults::Straggler;
        let t = trace(
            ServiceDistribution::Fixed(SimDuration::from_us(1)),
            0.6,
            8,
            20_000,
        );
        let healthy = Jbsq::new(JbsqVariant::Nebula, 8).run(&t);
        let mut cfg = JbsqConfig::of(JbsqVariant::Nebula, 8);
        cfg.faults.stragglers.push(Straggler {
            first_core: 0,
            last_core: 7,
            from: SimTime::from_us(100),
            until: SimTime::from_us(600),
            slowdown: 3.0,
        });
        let r = Jbsq::with_config(JbsqVariant::Nebula, cfg).run(&t);
        assert_eq!(r.completions.len(), t.len());
        assert!(
            r.p99() > healthy.p99(),
            "slowed {} vs healthy {}",
            r.p99(),
            healthy.p99()
        );
    }
}
