#!/usr/bin/env bash
# Measures hot-path throughput (events/sec) and peak event-queue population
# for the representative sim_throughput configuration plus the paper-scale
# 256-core (16x16) mesh — the latter under both control planes (Elided vs
# EventDriven) so the manager-plane event-elision win is recorded
# head-to-head — and a 1024-core (32x32) mesh. The 16x16 and 32x32 elided
# cases are also run through the quiet-window parallel engine at
# PAR_THREADS={2,4,8}; each parallel row asserts byte-identical invariants
# against its serial baseline before being recorded. Writes the result to
# BENCH_hotpath.json. Run from the repository root:
#
#   ./bench_hotpath.sh
#
# The JSON includes a "prior" block with the pre-streaming numbers measured
# on the same configuration, so regressions are visible without digging
# through git history.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p bench --bin hotpath
./target/release/hotpath | tee BENCH_hotpath.json
