//! End-to-end MICA integration: the functional store, the workload
//! generator and the scheduling simulation agree with each other.

use altocumulus::{AcConfig, Altocumulus};
use mica::store::Mica;
use mica::workload::{execute_against_store, KvsWorkload};
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use workload::request::RequestKind;

fn small_kvs() -> KvsWorkload {
    KvsWorkload {
        keys: 5_000,
        ..KvsWorkload::default()
    }
}

#[test]
fn populated_store_serves_trace() {
    let kvs = small_kvs();
    let mut store = Mica::new(4, 2048, 16 << 20);
    kvs.populate(&mut store, 1);
    assert_eq!(store.len(), 5_000);
    let trace = kvs.trace(workload::PoissonProcess::new(1e6), 20_000, 2);
    let (hits, misses) = execute_against_store(&kvs, &mut store, &trace, 3);
    assert_eq!(misses, 0);
    assert!(hits > 8_000, "roughly half the ops are GETs: {hits}");
}

#[test]
fn trace_service_times_match_request_kinds() {
    let kvs = small_kvs();
    let trace = kvs.trace(workload::PoissonProcess::new(1e6), 10_000, 4);
    for r in &trace {
        match r.kind {
            RequestKind::Scan => assert!(r.service > kvs.service.get_time(kvs.value_bytes) * 10),
            RequestKind::Get => assert_eq!(r.service, kvs.service.get_time(kvs.value_bytes)),
            RequestKind::Set => assert_eq!(r.service, kvs.service.set_time(kvs.value_bytes)),
            RequestKind::Generic => unreachable!("KVS traces have no generic requests"),
        }
    }
}

#[test]
fn clustered_kvs_traffic_favors_migration() {
    // Under desynchronized per-cluster bursts, Altocumulus should not lose
    // to domain-limited Nebula on SLO violations.
    let kvs = KvsWorkload {
        keys: 5_000,
        ..KvsWorkload::default()
    };
    let mean = kvs.mean_service();
    let rate = 0.6 * 64.0 / mean.as_secs_f64();
    let trace = kvs.trace_clustered(rate, 8, 60_000, 5);
    let slo = simcore::time::SimDuration::from_ns_f64(mean.as_ns_f64() * 10.0);

    let nebula = Jbsq::new(JbsqVariant::Nebula, 64).run(&trace);
    let ac = Altocumulus::new(AcConfig::ac_int(4, 16, mean)).run(&trace);
    assert!(
        ac.violation_ratio(slo) <= nebula.violation_ratio(slo) + 0.002,
        "AC {} should not lose to Nebula {}",
        ac.violation_ratio(slo),
        nebula.violation_ratio(slo)
    );
}

#[test]
fn kvs_mean_service_matches_sampled_mean() {
    let kvs = small_kvs();
    let trace = kvs.trace(workload::PoissonProcess::new(1e6), 100_000, 6);
    let sampled = trace.mean_service().as_ns_f64();
    let analytic = kvs.mean_service().as_ns_f64();
    let rel = (sampled - analytic).abs() / analytic;
    assert!(rel < 0.1, "sampled {sampled} vs analytic {analytic}");
}
