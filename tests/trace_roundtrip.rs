//! Persistence round-trips: traces written to disk drive identical
//! simulations after reload.

use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::time::SimDuration;
use workload::trace::Trace;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

#[test]
fn saved_trace_reproduces_simulation() {
    let dist = ServiceDistribution::bimodal_paper();
    let rate = PoissonProcess::rate_for_load(0.6, 16, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(5_000)
        .seed(23)
        .build();

    let mut buf = Vec::new();
    trace.save(&mut buf).expect("in-memory save");
    let reloaded = Trace::load(&buf[..]).expect("reload");
    assert_eq!(trace, reloaded);

    let a = Jbsq::new(JbsqVariant::Nebula, 16).run(&trace);
    let b = Jbsq::new(JbsqVariant::Nebula, 16).run(&reloaded);
    assert_eq!(a.p99(), b.p99());
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.completions.len(), b.completions.len());
}

#[test]
fn saved_trace_survives_tempfile() {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let trace = TraceBuilder::new(PoissonProcess::new(5e6), dist)
        .requests(2_000)
        .seed(29)
        .classify_kvs(SimDuration::from_us(10))
        .build();
    let path = std::env::temp_dir().join(format!("ac_trace_{}.txt", std::process::id()));
    trace
        .save(std::fs::File::create(&path).expect("create"))
        .expect("save");
    let reloaded = Trace::load(std::fs::File::open(&path).expect("open")).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, reloaded);
}

#[test]
fn merged_traces_drive_simulations() {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let trace = workload::clustered_bursty(dist, 20e6, 4, 8, 20_000, 31);
    let r = Jbsq::new(JbsqVariant::NanoPu, 32).run(&trace);
    assert_eq!(r.completions.len(), trace.len());
}
