//! Protocol walk-through over the hardware component models: the Fig. 8
//! example executed step by step through MRs, FIFOs and messages, plus the
//! §VI walk-through's arithmetic.

use altocumulus::hw::fifo::BoundedFifo;
use altocumulus::hw::messages::{Descriptor, Message, DESCRIPTOR_BYTES, HEADER_BYTES};
use altocumulus::hw::registers::{MigrationRegisters, ParameterRegisters};
use altocumulus::runtime::patterns::{classify, plan_migrations, Pattern};
use simcore::time::{SimDuration, SimTime};
use workload::request::RequestId;

fn descriptors(range: std::ops::Range<u64>) -> Vec<Descriptor> {
    range
        .map(|i| Descriptor {
            id: RequestId(i),
            trace_idx: i as usize,
            first_enqueued: SimTime::ZERO,
        })
        .collect()
}

/// The paper's §VI walk-through: Bulk=40, Concurrency=4, q=[30,30,70,30].
/// The 3rd queue's manager sends one MIGRATE of 10 descriptors to each of
/// the other queues; after ACKs its MR staging is empty again.
#[test]
fn section_6_walkthrough_end_to_end() {
    let q = [30u32, 30, 70, 30];
    assert_eq!(classify(&q, 40), Some(Pattern::Hill));

    let prs = ParameterRegisters::new(4, SimDuration::from_ns(200), 40, 4);
    assert_eq!(prs.message_size(), 10);

    let orders = plan_migrations(2, &q, usize::MAX, 40, 4);
    assert_eq!(
        orders.iter().map(|o| o.dst).collect::<Vec<_>>(),
        vec![0, 1, 3]
    );

    // Stage, send and ACK each order through the hardware models.
    let mut mr = MigrationRegisters::new(40);
    let mut send_fifo: BoundedFifo<Message> = BoundedFifo::paper_sized();
    let mut next_id = 0u64;
    for order in &orders {
        let batch = descriptors(next_id..next_id + order.count as u64);
        next_id += order.count as u64;
        let rejected = mr.stage(batch.clone());
        assert!(rejected.is_empty(), "MR must hold a 10-descriptor batch");
        let msg = Message::Migrate {
            src: 2,
            dst: order.dst,
            descriptors: batch,
            token: 0,
        };
        assert_eq!(msg.wire_bytes(), HEADER_BYTES + 10 * DESCRIPTOR_BYTES);
        send_fifo
            .push(msg)
            .expect("send FIFO has room for 3 messages");
    }
    assert_eq!(mr.len(), 30, "three staged batches of 10");

    // The NoC delivers; each destination ACKs; the source invalidates.
    let mut acks = 0;
    while let Some(msg) = send_fifo.pop() {
        if let Message::Migrate { descriptors, .. } = msg {
            // Destination accepts into its receive FIFO.
            let mut recv: BoundedFifo<Descriptor> = BoundedFifo::paper_sized();
            for d in &descriptors {
                recv.push(*d).expect("10 < 16 receive slots");
            }
            acks += 1;
            mr.invalidate(descriptors.len());
        }
    }
    assert_eq!(
        acks, 3,
        "the Fig. 8 source receives 3 ACK messages in total"
    );
    assert!(mr.is_empty(), "ACKed entries are invalidated");
}

/// A full receive FIFO produces the NACK path: the message bounces and the
/// source's staged descriptors survive for restoration.
#[test]
fn nack_on_full_receive_fifo() {
    let mut recv: BoundedFifo<Descriptor> = BoundedFifo::new(16);
    for d in descriptors(0..16) {
        recv.push(d).unwrap();
    }
    assert!(recv.is_full());

    let incoming = descriptors(100..108);
    let mut mr = MigrationRegisters::new(11);
    let leftover = mr.stage(incoming.clone());
    assert!(leftover.is_empty());

    // Destination cannot take it: push fails, NACK goes back.
    let first = incoming[0];
    assert!(recv.push(first).is_err());
    let nack = Message::Nack {
        src: 1,
        descriptors: incoming,
        token: 0,
    };
    assert_eq!(
        nack.wire_bytes(),
        HEADER_BYTES,
        "NACK is header-only on the wire"
    );
    // Source restores its staged entries instead of invalidating.
    let restored = mr.drain();
    assert_eq!(restored.len(), 8);
    assert_eq!(restored[0].id, RequestId(100));
}

/// UPDATE bookkeeping: queue-length broadcasts land in every other
/// manager's parameter registers.
#[test]
fn update_broadcast_refreshes_prs() {
    let mut prs: Vec<ParameterRegisters> = (0..4)
        .map(|_| ParameterRegisters::new(4, SimDuration::from_ns(200), 16, 4))
        .collect();
    // Manager 2 broadcasts q=70.
    for (i, pr) in prs.iter_mut().enumerate() {
        if i != 2 {
            pr.record_update(2, 70);
        }
    }
    for (i, pr) in prs.iter().enumerate() {
        if i != 2 {
            assert_eq!(pr.queue_lens[2], 70, "manager {i} missed the UPDATE");
        }
    }
}

/// The paper's MR sizing argument (§V-B): 11 descriptors of 14 B = 154 B,
/// and the 16-entry FIFOs hold 224 B.
#[test]
fn paper_hardware_budgets() {
    let mr = MigrationRegisters::paper_sized();
    assert_eq!(mr.capacity(), 11);
    assert_eq!(mr.size_bytes(), 154);
    let fifo: BoundedFifo<Descriptor> = BoundedFifo::paper_sized();
    assert_eq!(fifo.capacity() as u32 * DESCRIPTOR_BYTES, 224);
}
