//! Rack-tier scenario tests: the two-level scheduler composes with the
//! single-server worlds without changing them.
//!
//! The identity test is the strongest contract: a 1-server rack behind an
//! ideal ToR draws zero rack RNG words and reproduces the bare
//! [`Altocumulus`] run byte-for-byte — same completions in the same order,
//! same engine, same event count. The death test pins the takeover
//! accounting: killing a server mid-run loses nothing and never counts a
//! request twice.

use altocumulus::{AcConfig, Altocumulus, RackConfig, RackWorld, RoutePolicy, ServerDeath};
use altocumulus::{ServerSpec, TorConfig};
use simcore::time::SimTime;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

fn trace_for(load: f64, cores: usize, requests: usize, connections: u32, seed: u64) -> Trace {
    let dist = ServiceDistribution::bimodal_paper();
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(requests)
        .connections(connections)
        .seed(seed)
        .build()
}

#[test]
fn single_server_rack_reproduces_bare_world_byte_for_byte() {
    let mean = ServiceDistribution::bimodal_paper().mean();
    let trace = trace_for(0.6, 16, 6_000, 32, 42);

    let cfg = AcConfig::ac_int(2, 8, mean);
    let bare = Altocumulus::new(cfg.clone()).run_detailed(&trace);

    let mut rack = RackConfig::ac(1, 2, 8, mean);
    rack.tor = TorConfig::ideal();
    let ServerSpec::Ac(template) = &rack.template else {
        panic!("template is AC")
    };
    assert_eq!(format!("{template:?}"), format!("{cfg:?}"));

    for threads in [1, 4] {
        let r = RackWorld::new(rack.clone()).run(&trace, threads);
        assert_eq!(r.routing.rack_rng_draws, 0, "1-server rack draws no RNG");
        assert_eq!(r.routing.tor_max_queue_ps, 0, "ideal ToR never queues");
        assert_eq!(r.system.completions, bare.system.completions);
        assert_eq!(r.system.end_time, bare.system.end_time);
        assert_eq!(r.system.p99(), bare.system.p99());
        assert_eq!(r.per_server.len(), 1);
        assert_eq!(r.per_server[0].engine, bare.engine);
        assert_eq!(r.per_server[0].events, bare.summary.events);
        assert_eq!(r.events, bare.summary.events);
    }
}

#[test]
fn affinity_and_least_load_route_sanely() {
    let mean = ServiceDistribution::bimodal_paper().mean();
    let servers = 4;
    let trace = trace_for(0.5, servers * 16, 8_000, 64, 7);

    // Affinity: every request is exactly one of {new binding, hit, spill
    // rebind} — the counters partition the offered load.
    let affinity = RackConfig::ac(servers, 2, 8, mean);
    let ra = RackWorld::new(affinity).run(&trace, 1);
    let s = ra.routing;
    assert_eq!(
        s.new_bindings + s.affinity_hits + s.affinity_rebinds,
        trace.len() as u64
    );
    assert!(s.new_bindings <= 64, "at most one binding per connection");
    assert!(s.affinity_hits > 0);
    assert_eq!(s.dead_rebinds, 0, "healthy rack never rebinds off a death");
    assert_eq!(ra.system.completions.len(), trace.len());

    // Pure least-load: no affinity state at all, and with k == servers the
    // sampler is exhaustive, so load spreads over every server.
    let mut least = RackConfig::ac(servers, 2, 8, mean);
    least.policy = RoutePolicy {
        est_service: mean,
        ..RoutePolicy::least_load(servers)
    };
    let rl = RackWorld::new(least).run(&trace, 1);
    let l = rl.routing;
    assert_eq!(l.new_bindings + l.affinity_hits + l.affinity_rebinds, 0);
    assert_eq!(l.rack_rng_draws, 0, "k == servers needs no sampling draws");
    for p in &rl.per_server {
        assert!(p.assigned > 0, "{}: least-load left a server idle", p.label);
    }
    assert_eq!(rl.system.completions.len(), trace.len());
}

#[test]
fn whole_server_death_redirects_without_double_counting() {
    let mean = ServiceDistribution::bimodal_paper().mean();
    let servers = 4;
    let cores = 16;
    let trace = trace_for(0.6, servers * cores, 8_000, 64, 11);
    let horizon = trace.requests().last().unwrap().arrival;

    let mut rack = RackConfig::ac(servers, 2, 8, mean);
    let dead = 1;
    let death_at = SimTime::from_ps(horizon.as_ps() / 2);
    rack.deaths = vec![ServerDeath {
        server: dead,
        at: death_at,
    }];
    let r = RackWorld::new(rack).run(&trace, 1);

    // Nothing lost, everything completed...
    assert_eq!(r.routing.lost, 0, "survivors must absorb the dead load");
    assert_eq!(r.system.completions.len(), r.offered);
    assert!(
        r.routing.death_retries + r.routing.limbo_redirects > 0,
        "the death must actually have displaced requests"
    );
    assert!(
        r.routing.dead_rebinds > 0,
        "bound connections must move off"
    );

    // ...exactly once: unique global ids covering the whole trace.
    let mut seen = vec![false; r.offered];
    for c in &r.system.completions {
        let i = c.id.0 as usize;
        assert!(!seen[i], "request {i} completed twice");
        seen[i] = true;
        let req = &trace.requests()[i];
        assert_eq!(c.arrival, req.arrival, "latency is ToR-side");
        assert!(c.latency() >= req.service);
    }
    assert!(seen.iter().all(|&b| b));

    // No completion is credited to the dead server at or after its death,
    // and the per-server table agrees with the merged result.
    let death_ps = death_at.as_ps();
    let mut credited = vec![0usize; servers];
    for c in &r.system.completions {
        let s = c.core / cores;
        credited[s] += 1;
        if s == dead {
            assert!(c.finish.as_ps() < death_ps, "ghost completion after death");
        }
    }
    for (s, p) in r.per_server.iter().enumerate() {
        assert_eq!(p.completed, credited[s], "{}", p.label);
    }
    assert!(credited[dead] < r.per_server[dead].assigned);
}
