//! Property tests of the rack tier's determinism contract.
//!
//! Over random rack shapes, routing policies, per-server stress plans and
//! optional whole-server deaths:
//!
//! - a rack run is byte-identical across repeated invocations and across
//!   `parallel_map` thread counts (the serial routing pass fixes every
//!   sub-trace before any server simulates);
//! - routing round-trips: `route()` and `run()` agree on per-server
//!   assignment, and every offered request either completes exactly once
//!   (unique global id, latency at least its drawn service time) or is
//!   counted `lost` — never both, never twice, even when death retries
//!   re-route a request through a second server.

use altocumulus::{RackConfig, RackResult, RackWorld, RoutePolicy, ServerDeath};
use proptest::prelude::*;
use simcore::faults::FaultPlan;
use simcore::time::SimTime;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct Case {
    servers: usize,
    groups: usize,
    group_size: usize,
    load: f64,
    connections: u32,
    seed: u64,
    affinity: bool,
    power_k: usize,
    stress: bool,
    death_frac: Option<f64>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        (
            1usize..=4,  // servers
            1usize..=2,  // groups per server
            2usize..=6,  // group size
            0.1f64..0.8, // offered load
            1u32..32,    // connections
            0u64..1000,  // seed
        ),
        any::<bool>(),
        1usize..=4,
        any::<bool>(),
        prop_oneof![Just(None), (0.3f64..0.8).prop_map(Some)],
    )
        .prop_map(
            |(
                (servers, groups, group_size, load, connections, seed),
                affinity,
                power_k,
                stress,
                death_frac,
            )| {
                Case {
                    servers,
                    groups,
                    group_size,
                    load,
                    connections,
                    seed,
                    affinity,
                    power_k,
                    stress,
                    death_frac,
                }
            },
        )
}

fn build(case: &Case) -> (RackConfig, Trace) {
    let dist = ServiceDistribution::bimodal_paper();
    let cores = case.groups * case.group_size;
    let rate = PoissonProcess::rate_for_load(case.load, case.servers * cores, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(400)
        .connections(case.connections)
        .seed(case.seed)
        .build();
    let horizon = trace.requests().last().unwrap().arrival;

    let mut rack = RackConfig::ac(case.servers, case.groups, case.group_size, dist.mean());
    rack.seed = case.seed ^ 0xACC;
    rack.policy = RoutePolicy {
        power_k: case.power_k,
        affinity: case.affinity,
        est_service: dist.mean(),
        ..Default::default()
    };
    if case.stress {
        // Intra-server faults on worker cores only (manager tiles are
        // excluded by AcConfig's fault validation).
        let workers: Vec<usize> = (0..cores).filter(|c| c % case.group_size != 0).collect();
        rack.server_faults = (0..case.servers)
            .map(|s| FaultPlan::stress(0xF00 + case.seed + s as u64, &workers, 0.2, horizon))
            .collect();
    }
    if let Some(f) = case.death_frac {
        rack.deaths = vec![ServerDeath {
            server: case.seed as usize % case.servers,
            at: SimTime::from_ps((horizon.as_ps() as f64 * f) as u64),
        }];
    }
    (rack, trace)
}

fn digest(r: &RackResult) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}|{}",
        r.system.completions, r.routing, r.per_server, r.offered, r.events, r.peak_queue
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rack_runs_are_deterministic_across_threads_and_repeats(case in case_strategy()) {
        let (rack, trace) = build(&case);
        let world = RackWorld::new(rack);
        let base = world.run(&trace, 1);
        let again = world.run(&trace, 1);
        prop_assert_eq!(digest(&base), digest(&again), "repeat run diverged");
        for threads in [2usize, 4] {
            let t = world.run(&trace, threads);
            prop_assert_eq!(digest(&base), digest(&t), "threads={} diverged", threads);
        }
    }

    #[test]
    fn rack_runs_conserve_requests(case in case_strategy()) {
        let (rack, trace) = build(&case);
        let world = RackWorld::new(rack);

        // route()/run() agree on what each server was asked to do.
        let routing = world.route(&trace);
        let r = world.run(&trace, 1);
        for (s, sub) in routing.sub_traces.iter().enumerate() {
            prop_assert_eq!(r.per_server[s].assigned, sub.len());
        }

        // Every request completes exactly once or is lost, never both.
        prop_assert_eq!(
            r.system.completions.len() as u64 + r.routing.lost,
            r.offered as u64
        );
        let mut seen = vec![false; r.offered];
        for c in &r.system.completions {
            let i = c.id.0 as usize;
            prop_assert!(!seen[i], "request {} completed twice", i);
            seen[i] = true;
            let req = &trace.requests()[i];
            prop_assert_eq!(c.arrival, req.arrival);
            prop_assert!(c.latency() >= req.service);
        }
        // Losses only ever come from a rack whose every server died.
        if r.routing.lost > 0 {
            prop_assert!(case.death_frac.is_some() && case.servers == 1);
        }
    }
}
