//! Cross-crate integration: every system consumes the identical trace and
//! produces complete, deterministic, sanely-ordered results.

use altocumulus::{AcConfig, Altocumulus};
use schedulers::central::{CentralConfig, CentralDispatch};
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use schedulers::ideal::{CentralQueue, CentralQueueConfig};
use schedulers::jbsq::{Jbsq, JbsqVariant};
use schedulers::stealing::{StealingConfig, WorkStealing};
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

fn systems(cores: usize, mean: SimDuration) -> Vec<Box<dyn RpcSystem>> {
    vec![
        Box::new(DFcfs::new(DFcfsConfig::rss(cores))),
        Box::new(WorkStealing::new(StealingConfig::zygos(cores))),
        Box::new(CentralDispatch::new(CentralConfig::shinjuku(cores))),
        Box::new(Jbsq::new(JbsqVariant::RpcValet, cores)),
        Box::new(Jbsq::new(JbsqVariant::Nebula, cores)),
        Box::new(Jbsq::new(JbsqVariant::NanoPu, cores)),
        Box::new(CentralQueue::new(CentralQueueConfig::ideal(cores))),
        Box::new(Altocumulus::new(AcConfig::ac_int(cores / 8, 8, mean))),
        Box::new(Altocumulus::new(AcConfig::ac_rss(cores / 8, 8, mean))),
    ]
}

#[test]
fn every_system_completes_every_request() {
    let dist = ServiceDistribution::bimodal_paper();
    let rate = PoissonProcess::rate_for_load(0.5, 16, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(8_000)
        .connections(64)
        .seed(101)
        .build();
    for mut sys in systems(16, dist.mean()) {
        let r = sys.run(&trace);
        assert_eq!(
            r.completions.len(),
            trace.len(),
            "{} lost requests",
            sys.name()
        );
        // Every request id completes exactly once.
        let mut seen = vec![false; trace.len()];
        for c in &r.completions {
            let i = c.id.0 as usize;
            assert!(!seen[i], "{}: request {i} completed twice", sys.name());
            seen[i] = true;
        }
        // Latency is bounded below by the pre-drawn service time.
        for c in &r.completions {
            let req = &trace.requests()[c.id.0 as usize];
            assert!(
                c.latency() >= req.service,
                "{}: latency {} below service {}",
                sys.name(),
                c.latency(),
                req.service
            );
        }
    }
}

#[test]
fn identical_traces_identical_results() {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_us(1),
    };
    let rate = PoissonProcess::rate_for_load(0.7, 16, dist.mean());
    let mk = || {
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(5_000)
            .seed(55)
            .build()
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a, b, "trace generation must be deterministic");
    for (mut s1, mut s2) in systems(16, dist.mean())
        .into_iter()
        .zip(systems(16, dist.mean()))
    {
        let r1 = s1.run(&a);
        let r2 = s2.run(&b);
        assert_eq!(r1.p99(), r2.p99(), "{} not deterministic", s1.name());
        assert_eq!(r1.end_time, r2.end_time);
    }
}

#[test]
fn preemptive_systems_bound_the_bimodal_tail() {
    // With dispersed service times, the preemptive/pooled systems must beat
    // plain RSS by a wide margin at the tail.
    let dist = ServiceDistribution::bimodal_paper();
    let rate = PoissonProcess::rate_for_load(0.55, 16, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(40_000)
        .connections(64)
        .seed(7)
        .build();
    let rss = DFcfs::new(DFcfsConfig::rss(16)).run(&trace);
    let nanopu = Jbsq::new(JbsqVariant::NanoPu, 16).run(&trace);
    let slo = SimDuration::from_us(300);
    assert!(
        rss.violation_ratio(slo) > 5.0 * nanopu.violation_ratio(slo).max(0.005),
        "RSS {} vs nanoPU {}",
        rss.violation_ratio(slo),
        nanopu.violation_ratio(slo)
    );
}

#[test]
fn altocumulus_beats_rss_under_connection_skew() {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(0.75, 64, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(60_000)
        .connections(6) // heavy skew across 4 groups
        .seed(13)
        .build();
    let rss = DFcfs::new(DFcfsConfig::rss(64)).run(&trace);
    let ac = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run(&trace);
    assert!(
        ac.p99() < rss.p99(),
        "AC p99 {} should beat skewed RSS {}",
        ac.p99(),
        rss.p99()
    );
}

#[test]
fn throughput_never_exceeds_capacity() {
    let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
    let rate = PoissonProcess::rate_for_load(0.9, 16, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(30_000)
        .seed(17)
        .build();
    let capacity_rps = 16.0 / dist.mean().as_secs_f64();
    for mut sys in systems(16, dist.mean()) {
        let r = sys.run(&trace);
        assert!(
            r.throughput_rps() <= capacity_rps * 1.01,
            "{} throughput {} exceeds capacity {}",
            sys.name(),
            r.throughput_rps(),
            capacity_rps
        );
    }
}
