//! The full offline→online pipeline of the paper's Fig. 5: measure
//! first-violation thresholds in simulation, fit the Eq. 2 model, feed it to
//! the Altocumulus runtime, and verify it behaves sensibly online.

use altocumulus::{AcConfig, Altocumulus, ThresholdPolicy};
use queueing::erlang::expected_queue_len;
use queueing::threshold::ThresholdModel;
use schedulers::ideal::{CentralQueue, CentralQueueConfig};
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

fn measure_threshold_points(cores: usize, loads: &[f64]) -> Vec<(f64, f64)> {
    let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
    let slo = SimDuration::from_us(10);
    let mut pts = Vec::new();
    for &load in loads {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(250_000)
            .seed(5)
            .build();
        let offered = trace.offered_load(cores) * cores as f64;
        let r = CentralQueue::new(CentralQueueConfig::ideal(cores)).run_instrumented(&trace);
        if let Some(t) = r.first_violation_queue_len(&trace, slo) {
            pts.push((offered, t as f64));
        }
    }
    pts
}

#[test]
fn offline_calibration_produces_usable_model() {
    let cores = 16;
    let pts = measure_threshold_points(cores, &[0.97, 0.98, 0.99, 0.995]);
    assert!(pts.len() >= 2, "need violating loads to calibrate");
    let model = ThresholdModel::fit(cores, &pts);

    // The fitted threshold must land between 1 and the naive upper bound
    // over the calibrated range, and track E[Nq].
    for &(offered, measured) in &pts {
        let t = model.expected_threshold(cores, offered);
        assert!(t >= 1.0);
        assert!(
            t < queueing::naive_upper_bound(cores, 10.0) as f64,
            "threshold {t} should undercut k*L+1"
        );
        // Within 3x of the measurement (linear fit over few points).
        assert!(
            t / measured < 3.0 && measured / t < 3.0,
            "t={t} vs measured={measured}"
        );
    }
    // And correlate positively with E[Nq].
    let lo = model.expected_threshold(cores, pts[0].0);
    let hi = model.expected_threshold(cores, pts[pts.len() - 1].0);
    assert!(hi >= lo);
    assert!(expected_queue_len(cores, pts[pts.len() - 1].0) >= expected_queue_len(cores, pts[0].0));
}

#[test]
fn calibrated_model_drives_runtime() {
    let cores = 16;
    let pts = measure_threshold_points(cores, &[0.97, 0.98, 0.99, 0.995]);
    let model = ThresholdModel::fit(cores, &pts);

    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(0.85, 64, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(50_000)
        .connections(6)
        .seed(9)
        .build();

    let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
    cfg.threshold = ThresholdPolicy::Model(model);
    let with_model = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    let mut off = cfg;
    off.migration_enabled = false;
    let baseline = Altocumulus::new(off).run_detailed(&trace);

    assert!(with_model.stats.migrated_requests > 0);
    assert!(
        with_model.system.p99() <= baseline.system.p99(),
        "calibrated model should not hurt the tail: {} vs {}",
        with_model.system.p99(),
        baseline.system.p99()
    );
}

#[test]
fn accuracy_and_effectiveness_are_consistent() {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_ns(850),
    };
    let rate = PoissonProcess::rate_for_load(0.9, 64, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(80_000)
        .connections(8)
        .seed(11)
        .build();
    let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);

    let cfg = AcConfig::ac_int(4, 16, dist.mean());
    let with = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    let mut off = cfg;
    off.migration_enabled = false;
    let base = Altocumulus::new(off).run_detailed(&trace);

    let acc =
        altocumulus::prediction_accuracy(&base.system, &with.stats.predicted, trace.len(), slo);
    assert!((0.0..=1.0).contains(&acc), "accuracy {acc} out of range");

    let migrated: std::collections::HashSet<usize> = with
        .system
        .completions
        .iter()
        .filter(|c| c.migrated)
        .map(|c| c.id.0 as usize)
        .collect();
    let b = altocumulus::classify_effectiveness(
        &base.system,
        &with.system,
        &migrated,
        trace.len(),
        slo,
    );
    assert_eq!(
        b.total() as usize,
        migrated.len(),
        "every migration classified"
    );
}
