//! Offline threshold calibration (the paper's Fig. 5 offline component):
//! measure the first-violation queue length across loads in simulation, fit
//! the linear threshold model against Erlang-C, and print the fit.
//!
//! ```sh
//! cargo run --release --example threshold_calibration
//! ```

use queueing::erlang::expected_queue_len;
use queueing::threshold::{r_squared, ThresholdModel};
use schedulers::ideal::{CentralQueue, CentralQueueConfig};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

fn main() {
    let cores = 64;
    // Dispersed-but-bounded service (90% x 0.5us, 10% x 5.5us, mean 1us):
    // no single request can violate the 10us SLO on its own, so every
    // violation is queueing-caused, and service variability lets early
    // violations appear at sub-unity loads (deterministic service would pin
    // the first violation at the analytic floor k*(L-1); see EXPERIMENTS.md
    // on Fig. 7).
    let dist = ServiceDistribution::Bimodal {
        short: SimDuration::from_ns(500),
        long: SimDuration::from_ns(5_500),
        p_long: 0.10,
    };
    let slo = SimDuration::from_us(10); // L = 10
    let loads = [0.985, 0.99, 0.9925, 0.995, 0.9975];

    // Measure the queue length at the first SLO violation per load.
    let mut points = Vec::new();
    let mut table = Table::new(&["load", "E[Nq] (Erlang-C)", "measured T (first violation)"]);
    for &load in &loads {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(1_000_000)
            .seed(5)
            .build();
        let offered = trace.offered_load(cores) * cores as f64;
        let r = CentralQueue::new(CentralQueueConfig::ideal(cores)).run_instrumented(&trace);
        if let Some(t_first) = r.first_violation_queue_len(&trace, slo) {
            let nq = expected_queue_len(cores, offered);
            table.row(&[
                &format!("{load:.2}"),
                &format!("{nq:.1}"),
                &t_first.to_string(),
            ]);
            points.push((offered, t_first as f64));
        } else {
            table.row(&[&format!("{load:.2}"), "-", "no violations observed"]);
        }
    }
    table.print();

    if points.len() >= 2 {
        let model = ThresholdModel::fit(cores, &points);
        let xy: Vec<(f64, f64)> = points
            .iter()
            .map(|&(a, t)| (expected_queue_len(cores, a), t))
            .collect();
        let r2 = r_squared(&xy, model.a, model.b);
        println!(
            "\nfitted model: E[T] = {:.3} * E[Nq] + {:.1}   (R^2 = {:.4})",
            model.a, model.b, r2
        );
        println!("paper's Fixed-distribution constants for comparison: a=1.01, c=0.998, b=d=0");
        let naive = queueing::naive_upper_bound(cores, 10.0);
        println!(
            "at load 0.99 the model picks T={} vs the naive upper bound k*L+1={naive}",
            model.threshold(cores, cores as f64 * 0.99)
        );
    } else {
        println!("\nnot enough violating loads to fit a model; raise the load range");
    }
}
