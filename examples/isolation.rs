//! Application isolation — the paper's future-work study, runnable.
//!
//! Two applications share a 64-core Altocumulus machine. Tenant A misbehaves
//! (a sustained overload burst); tenant B trickles latency-critical
//! requests. Compare a shared runtime (migration spreads A's overload onto
//! B's cores) with a tenancy-partitioned runtime (A's storm is contained).
//!
//! ```sh
//! cargo run --release --example isolation
//! ```

use altocumulus::{AcConfig, Altocumulus, Tenancy};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::arrival::{MmppProcess, PoissonProcess};
use workload::trace::{Trace, TraceBuilder};
use workload::ServiceDistribution;

fn main() {
    let svc = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let groups = 4;
    let group_size = 16;

    // Tenant A (connections 0,2,4,..): bursty and hot — its mean load alone
    // would fill ~90% of HALF the machine.
    let a_rate = 0.9 * 32.0 / svc.mean().as_secs_f64();
    let tenant_a = TraceBuilder::new(MmppProcess::bursty(a_rate), svc)
        .requests(120_000)
        .connections(8)
        .seed(3)
        .build();
    // Tenant B (odd connections): a light, latency-critical trickle.
    let b_rate = 0.2 * 32.0 / svc.mean().as_secs_f64();
    let tenant_b = TraceBuilder::new(PoissonProcess::new(b_rate), svc)
        .requests(26_000)
        .connections(8)
        .connection_offset(101) // odd ids -> tenant 1 under conn%2 striping
        .seed(4)
        .build();
    // Shift tenant A connections to even ids.
    let tenant_a = Trace::new(
        tenant_a
            .iter()
            .map(|r| {
                let mut r = *r;
                r.conn = workload::ConnectionId(r.conn.0 * 2); // even
                r
            })
            .collect(),
    );
    let trace = Trace::merge(vec![tenant_a, tenant_b]);
    let tenancy = Tenancy::even(groups, 2);

    println!("64 cores, 4 groups. Tenant A: hot bursty stream; tenant B: light trickle.\n");

    let mut table = Table::new(&["runtime", "tenant", "p50", "p99", "max"]);
    for (label, isolated) in [("shared", false), ("isolated", true)] {
        let mut cfg = AcConfig::ac_int(groups, group_size, svc.mean());
        if isolated {
            cfg.tenancy = Some(tenancy.clone());
        }
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        for tenant in 0..2u32 {
            let mut hist = simcore::metrics::LatencyHistogram::new();
            for c in &r.system.completions {
                let req = &trace.requests()[c.id.0 as usize];
                if tenancy.tenant_of_conn(req.conn) == tenant {
                    hist.record(c.latency());
                }
            }
            table.row(&[
                label,
                if tenant == 0 {
                    "A (noisy)"
                } else {
                    "B (victim)"
                },
                &hist.quantile(0.5).to_string(),
                &hist.quantile(0.99).to_string(),
                &hist.max().to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nWith tenancy, tenant B's tail is immune to tenant A's storm; the cost\n\
         is that A can no longer borrow B's idle cores (its own tail grows)."
    );
}
