//! Quickstart: run Altocumulus next to an RSS baseline on the paper's
//! headline workload and print the tail-latency comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use altocumulus::{AcConfig, Altocumulus};
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

fn main() {
    // The paper's headline Bimodal workload: 99.5% of requests run 0.5us,
    // 0.5% run 500us (GET/SET vs SCAN in a key-value store).
    let dist = ServiceDistribution::bimodal_paper();
    let cores = 16;
    let load = 0.6;
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(60_000)
        .connections(12) // few connections => visible RSS imbalance
        .seed(42)
        .build();
    println!(
        "workload: {dist}, {} requests, offered load {:.2} on {cores} cores\n",
        trace.len(),
        trace.offered_load(cores)
    );

    // Baseline: a plain RSS NIC spraying per-core queues.
    let mut rss = DFcfs::new(DFcfsConfig::rss(cores));
    let rss_result = rss.run(&trace);

    // Altocumulus: 2 groups of 8 (7 workers + 1 manager each), proactive
    // migration between the 2 manager queues. (Tiny 4-core groups would be
    // chronically saturated by the 500us SCANs alone — the paper's
    // group-size exploration, Fig. 12(a), makes the same point.)
    let mut ac = Altocumulus::new(AcConfig::ac_rss(2, 8, dist.mean()));
    let ac_result = ac.run_detailed(&trace);

    let slo = SimDuration::from_us(300);
    let mut table = Table::new(&["system", "p50", "p99", "max", "SLO violations"]);
    for (name, r) in [
        ("RSS d-FCFS", &rss_result),
        ("Altocumulus", &ac_result.system),
    ] {
        let s = r.summary();
        table.row(&[
            name,
            &s.p50.to_string(),
            &s.p99.to_string(),
            &s.max.to_string(),
            &format!("{:.3}%", r.violation_ratio(slo) * 100.0),
        ]);
    }
    table.print();

    let st = &ac_result.stats;
    println!(
        "\nAltocumulus runtime: {} ticks, {} MIGRATE msgs, {} requests migrated, \
         {} NACKed, {} UPDATE msgs, {} guard-blocked",
        st.ticks,
        st.migrate_messages,
        st.migrated_requests,
        st.nacked_messages,
        st.update_messages,
        st.guard_blocked
    );
}
