//! End-to-end key-value store scenario (paper §IX): a MICA-like store
//! served through Altocumulus vs. a Nebula-style hardware scheduler, under
//! bursty "real-world" traffic.
//!
//! ```sh
//! cargo run --release --example kvstore
//! ```

use altocumulus::{AcConfig, Altocumulus};
use mica::store::Mica;
use mica::workload::{execute_against_store, KvsWorkload};
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::report::Table;

fn main() {
    // Build the dataset and verify the store actually serves it.
    let kvs = KvsWorkload {
        keys: 50_000,
        ..KvsWorkload::default()
    };
    let mut store = Mica::paper_scaled(4);
    kvs.populate(&mut store, 7);
    println!(
        "populated {} keys across {} EREW partitions",
        store.len(),
        store.partitions()
    );

    // "Real-world" traffic: 8 connection clusters bursting out of phase
    // (temporal imbalance across receive queues, cf. Fig. 9) at ~60% of the
    // 64-core capacity of the mix.
    let cores = 64;
    let mean = kvs.mean_service();
    let rate = 0.6 * cores as f64 / mean.as_secs_f64();
    let trace = kvs.trace_clustered(rate, 8, 120_000, 11);
    println!(
        "trace: {} requests, mean handler {}, offered load {:.2}\n",
        trace.len(),
        mean,
        trace.offered_load(cores)
    );

    // Functional pass: execute the operations against the real store.
    let (hits, misses) = execute_against_store(&kvs, &mut store, &trace, 13);
    println!("functional check: {hits} GET hits, {misses} misses\n");
    assert_eq!(misses, 0, "populated keys must all hit");

    // Timing pass: Nebula vs Altocumulus on the same trace.
    let nebula = Jbsq::new(JbsqVariant::Nebula, cores).run(&trace);
    let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
    let ac_result = ac.run_detailed(&trace);

    let slo = simcore::time::SimDuration::from_ns_f64(mean.as_ns_f64() * 10.0);
    let mut t = Table::new(&["system", "p50", "p99", "p99.9", "viol@10A"]);
    for (name, r) in [
        ("Nebula JBSQ(2)", &nebula),
        ("Altocumulus int", &ac_result.system),
    ] {
        let s = r.summary();
        t.row(&[
            name,
            &s.p50.to_string(),
            &s.p99.to_string(),
            &s.p999.to_string(),
            &format!("{:.3}%", r.violation_ratio(slo) * 100.0),
        ]);
    }
    t.print();
    println!(
        "\nmigrations: {} requests moved across managers ({} messages)",
        ac_result.stats.migrated_requests, ac_result.stats.migrate_messages
    );
}
