//! Swapping scheduling policy knobs without hardware changes — the
//! flexibility the paper's conclusion highlights: tune the threshold policy,
//! migration period, bulk and interface purely in (simulated) software.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use altocumulus::{AcConfig, Altocumulus, Interface, ThresholdPolicy};
use queueing::ThresholdModel;
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

fn main() {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let cores = 64;
    let rate = PoissonProcess::rate_for_load(0.85, cores, dist.mean());
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(80_000)
        .connections(6) // imbalanced RSS
        .seed(3)
        .build();
    let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);

    let base = AcConfig::ac_int(4, 16, dist.mean());

    // A palette of software-only policy variants on identical hardware.
    let variants: Vec<(&str, AcConfig)> = vec![
        ("paper model, P=200ns", base.clone()),
        ("naive k*L+1 threshold", {
            let mut c = base.clone();
            c.threshold = ThresholdPolicy::NaiveUpperBound { slo_ratio: 10.0 };
            c
        }),
        ("identity Erlang-C threshold", {
            let mut c = base.clone();
            c.threshold = ThresholdPolicy::Model(ThresholdModel::identity());
            c
        }),
        ("lazy period 1000ns", {
            let mut c = base.clone();
            c.period = SimDuration::from_ns(1000);
            c
        }),
        ("eager period 40ns", {
            let mut c = base.clone();
            c.period = SimDuration::from_ns(40);
            c
        }),
        ("MSR interface", {
            let mut c = base.clone();
            c.interface = Interface::Msr;
            c
        }),
        ("migrations disabled", {
            let mut c = base.clone();
            c.migration_enabled = false;
            c
        }),
    ];

    let mut t = Table::new(&["policy", "p99", "viol@10A", "migrated", "msgs"]);
    for (name, cfg) in variants {
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        t.row(&[
            name,
            &r.system.p99().to_string(),
            &format!("{:.3}%", r.system.violation_ratio(slo) * 100.0),
            &r.stats.migrated_requests.to_string(),
            &r.stats.migrate_messages.to_string(),
        ]);
    }
    t.print();
    println!("\nAll variants ran on the same trace and the same simulated hardware —");
    println!("only the user-level runtime parameters changed.");
}
