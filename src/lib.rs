//! # altocumulus-repro — reproduction suite for ALTOCUMULUS (MICRO 2022)
//!
//! One roof over the whole reproduction of *"ALTOCUMULUS: Scalable
//! Scheduling for Nanosecond-Scale Remote Procedure Calls"* (Zhao,
//! Uwizeyimana, Ganesan, Jeffrey, Enright Jerger — MICRO 2022):
//!
//! | crate | role |
//! |---|---|
//! | [`simcore`] | deterministic ps-resolution discrete-event engine, metrics |
//! | [`interconnect`] | NoC mesh (3 ns/hop), PCIe, QPI, memory hierarchy |
//! | [`workload`] | service-time distributions, Poisson/MMPP arrivals, traces |
//! | [`queueing`] | Erlang-C, M/M/k, the E\[T̂\] threshold model + calibration |
//! | [`rpcstack`] | TCP/IP / eRPC / nanoRPC stacks, NIC steering & transfers |
//! | [`schedulers`] | IX, ZygOS, Shinjuku, RPCValet, Nebula, nanoPU baselines |
//! | [`altocumulus`] | the paper's contribution: runtime + hw messaging + system |
//! | [`mica`] | MICA-like partitioned KVS for the end-to-end experiments |
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results. The `examples/`
//! directory holds runnable scenarios; `crates/bench` regenerates every
//! figure of the paper's evaluation.

#![forbid(unsafe_code)]

pub use altocumulus;
pub use interconnect;
pub use mica;
pub use queueing;
pub use rpcstack;
pub use schedulers;
pub use simcore;
pub use workload;
